//! # Proactive deadlock prediction for Dimmunix
//!
//! The OSDI'08 system only develops immunity *after* suffering each
//! deadlock pattern once: the monitor archives a signature when the RAG
//! contains an actual cycle. This crate closes that gap with a
//! Goodlock-style **lock-order-graph predictor**: it watches the same
//! monitor-side event stream (acquisitions and releases — never the
//! request hot path), maintains a cross-thread lock-order graph, and
//! reports order cycles that are *feasible* deadlocks — cycles for which
//! one ordering instance per edge can be chosen with pairwise-distinct
//! threads and pairwise-disjoint **guard sets** (the gate locks held
//! around each ordering; a common gate serializes the critical sections,
//! so such a cycle can never actually close — the classic gate-lock
//! false-positive suppression).
//!
//! # The condensation pass
//!
//! Scaling to thousands of locks is what the [`scc`] module buys: the
//! predictor maintains an **incrementally updated SCC condensation** of
//! the order graph (Pearce–Kelly dynamic topological order, Tarjan per
//! affected component). Each pass then decomposes into
//! **merge → enumerate → feasibility-filter → vaccinate**:
//!
//! 1. **Merge** — every new edge is checked against the condensation's
//!    topological order when it is recorded: the common acyclic edge is
//!    proven cycle-free in O(log n) and never enters the work queue; an
//!    order-violating edge triggers a restructure bounded by the affected
//!    region, merging components when it closes a cycle.
//! 2. **Enumerate** — cycle enumeration runs only through edges that
//!    landed *inside* an SCC (every genuinely new cycle passes through
//!    the edge that closed it), restricted to that component's members
//!    and the `max_cycle_len` depth bound.
//! 3. **Feasibility-filter** — each enumerated lock cycle gets one
//!    instance chosen per edge with pairwise-distinct threads and
//!    pairwise-disjoint guard sets (gate-lock suppression), from the
//!    cycle's canonical rotation so the chosen combination is independent
//!    of discovery order.
//! 4. **Vaccinate** — a feasible cycle synthesizes a real deadlock
//!    signature: each chosen instance contributes the call stack with
//!    which its thread *held* the edge's source lock — exactly the
//!    hold-edge label the RAG's cycle detector would have reported had
//!    the deadlock fired. The monitor archives those labels through the
//!    ordinary history path (tagged
//!    [`dimmunix_signature::Provenance::Predicted`]), so the avoidance
//!    engine yields threads away from the pattern **before its first
//!    manifestation** — first-run immunity.
//!
//! A pass that exhausts `pass_budget` mid-enumeration **defers** — the
//! paused search (and the rest of the queue) resumes exactly where it
//! stopped at the next pass. Nothing is ever abandoned: the old
//! restart-from-scratch DFS had to drop edges whose search could not
//! finish within one whole budget, a soundness hole the persistent
//! condensation removes.
//!
//! Long-running processes stay bounded through **lock aging**: a lock
//! unheld and order-quiescent for `lock_retire_after` passes is retired
//! from the graph and the condensation (splitting its component if
//! needed), so the graph tracks the working set, not the process
//! lifetime.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod scc;

use graph::{EdgeInstance, LockOrderGraph, Recorded};
use scc::{Condensation, EdgeOutcome};

use dimmunix_rag::{LockId, ThreadId};
use dimmunix_signature::StackId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Tunables of the prediction subsystem.
#[derive(Clone, Debug)]
pub struct PredictionConfig {
    /// Upper bound on predicted signatures synthesized into the history
    /// by one process (the monitor stops archiving — but keeps counting —
    /// beyond it).
    pub max_predicted: usize,
    /// Minimum number of edges (== threads) in a reported cycle. 2 is the
    /// classic two-lock inversion.
    pub min_cycle_len: usize,
    /// Maximum number of edges in a searched cycle; bounds the
    /// enumeration depth.
    pub max_cycle_len: usize,
    /// Per-edge cap on stored ordering instances.
    pub max_instances_per_edge: usize,
    /// Global cap on stored ordering instances (graph memory bound).
    pub max_edge_instances: usize,
    /// Cycle-enumeration step budget per [`Predictor::pass`]; an
    /// exhausted pass *defers* — the paused enumeration and remaining
    /// queue resume at the next pass, never dropped.
    pub pass_budget: usize,
    /// Component-visit budget for one incremental condensation
    /// restructure (the Pearce–Kelly affected region). Past it the
    /// condensation falls back to a full Tarjan rebuild — always correct,
    /// O(graph), and rare.
    pub scc_rebuild_budget: usize,
    /// Passes a lock may stay quiescent — unheld by every thread and
    /// recording no new orderings — before it is retired from the order
    /// graph and condensation (lock aging). `0` disables aging.
    pub lock_retire_after: u64,
}

impl Default for PredictionConfig {
    fn default() -> Self {
        Self {
            max_predicted: 128,
            min_cycle_len: 2,
            max_cycle_len: 4,
            max_instances_per_edge: 8,
            max_edge_instances: 1 << 16,
            pass_budget: 1 << 13,
            scc_rebuild_budget: 1 << 12,
            lock_retire_after: 1 << 12,
        }
    }
}

/// One feasible deadlock the predictor found.
#[derive(Clone, Debug)]
pub struct PredictedCycle {
    /// The synthesized signature's member stacks (sorted multiset): one
    /// hold stack per cycle edge.
    pub labels: Vec<StackId>,
    /// Number of threads (== locks == edges) on the cycle.
    pub threads: usize,
}

/// Monotonic predictor counters (telemetry).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PredictorStats {
    /// Feasible cycles reported (each becomes a candidate vaccine).
    pub cycles_predicted: u64,
    /// Distinct lock cycles refuted because every instance combination
    /// was blocked by a shared gate lock (or a cycle lock inside a guard
    /// set), counted once per cycle lock set.
    pub guard_suppressed: u64,
    /// Ordering observations dropped by the instance caps. Unlike the
    /// old budgeted-DFS design, pass-budget exhaustion never drops an
    /// edge — it defers (see [`PredictorStats::deferred`]).
    pub dropped: u64,
    /// Times a pass ran out of budget and parked its enumeration state
    /// for the next pass. Work is delayed, never lost.
    pub deferred: u64,
    /// Component merges performed by the condensation (each one flagged
    /// at least one candidate cycle for enumeration).
    pub scc_merges: u64,
    /// Largest strongly-connected component ever formed (gauge).
    pub scc_component_peak: u64,
    /// Graph edges removed by lock aging.
    pub edges_retired: u64,
    /// Live edge instances in the order graph (gauge).
    pub edge_instances: u64,
    /// Locks present in the order graph (gauge).
    pub locks: u64,
}

/// A cycle enumeration paused by budget exhaustion, parked across passes.
#[derive(Clone, Debug)]
struct Enumeration {
    /// The dirty edge's source: the DFS target closing the cycle.
    src: LockId,
    /// Current lock path, starting `[src, dst, ...]`.
    path: Vec<LockId>,
    /// DFS frames: (sorted successor snapshot, cursor).
    frames: Vec<(Vec<LockId>, usize)>,
}

/// The online lock-order-graph deadlock predictor. One per monitor; not
/// thread-safe (the monitor owns it). `Clone` snapshots the complete
/// state — the monitor's supervisor keeps a copy from the last successful
/// pass so a restarted monitor resumes prediction instead of relearning
/// the graph.
#[derive(Clone, Debug)]
pub struct Predictor {
    cfg: PredictionConfig,
    graph: LockOrderGraph,
    /// Incrementally maintained SCC condensation of `graph`.
    scc: Condensation,
    /// Per-thread held multiset: `(lock, acquisition stack)` in acquisition
    /// order (reentrancy repeats the lock).
    held: HashMap<ThreadId, Vec<(LockId, StackId)>>,
    /// Edges that landed inside an SCC and await cycle enumeration.
    dirty: VecDeque<(LockId, LockId)>,
    dirty_set: HashSet<(LockId, LockId)>,
    /// Enumeration paused by budget exhaustion, resumed next pass.
    pending: Option<Enumeration>,
    /// Label multisets already reported (prevents re-emission and
    /// re-searching known cycles every pass).
    emitted: HashSet<Vec<StackId>>,
    /// Lock sets of cycles already counted as guard-suppressed, so the
    /// telemetry counts *distinct* suppressed cycles — not one event per
    /// rotation, dirty edge, or re-dirtying instance.
    suppressed_cycles: HashSet<Vec<LockId>>,
    /// Monotonic pass counter — the aging clock.
    pass_tick: u64,
    /// Last pass at which each lock was held, released, or recorded an
    /// ordering.
    last_active: HashMap<LockId, u64>,
    /// How many times each lock is currently held across all threads.
    held_count: HashMap<LockId, usize>,
    /// Aging probes: `(due pass, lock)`, lazily revalidated on pop.
    retire_queue: BinaryHeap<Reverse<(u64, LockId)>>,
    /// Locks with a live probe in `retire_queue`.
    retire_queued: HashSet<LockId>,
    cycles_predicted: u64,
    guard_suppressed: u64,
    dropped: u64,
    deferred: u64,
    edges_retired: u64,
}

impl Predictor {
    /// Creates an empty predictor.
    pub fn new(cfg: PredictionConfig) -> Self {
        Self {
            cfg,
            graph: LockOrderGraph::default(),
            scc: Condensation::default(),
            held: HashMap::new(),
            dirty: VecDeque::new(),
            dirty_set: HashSet::new(),
            pending: None,
            emitted: HashSet::new(),
            suppressed_cycles: HashSet::new(),
            pass_tick: 0,
            last_active: HashMap::new(),
            held_count: HashMap::new(),
            retire_queue: BinaryHeap::new(),
            retire_queued: HashSet::new(),
            cycles_predicted: 0,
            guard_suppressed: 0,
            dropped: 0,
            deferred: 0,
            edges_retired: 0,
        }
    }

    /// The configuration this predictor runs under.
    pub fn config(&self) -> &PredictionConfig {
        &self.cfg
    }

    /// Feeds one `acquired` event: thread `t` obtained lock `l` with call
    /// stack `stack`. Records one order-graph edge per lock already held.
    pub fn on_acquired(&mut self, t: ThreadId, l: LockId, stack: StackId) {
        self.touch(l);
        *self.held_count.entry(l).or_insert(0) += 1;
        let held = self.held.entry(t).or_default();
        let reentrant = held.iter().any(|&(h, _)| h == l);
        // Distinct held locks with their innermost hold stacks, in
        // acquisition order (deterministic edge recording).
        let mut distinct: Vec<(LockId, StackId)> = Vec::with_capacity(held.len());
        if !reentrant {
            for &(h, s) in held.iter() {
                match distinct.iter_mut().find(|(d, _)| *d == h) {
                    Some(entry) => entry.1 = s, // innermost hold wins
                    None => distinct.push((h, s)),
                }
            }
        }
        held.push((l, stack));
        {
            for &(src, hold_stack) in &distinct {
                // Gate set: every *other* held lock. A lock held across
                // both of two orderings serializes them.
                let mut guards: Vec<LockId> = distinct
                    .iter()
                    .map(|&(d, _)| d)
                    .filter(|&d| d != src)
                    .collect();
                guards.sort_unstable();
                let inst = EdgeInstance {
                    thread: t,
                    hold_stack,
                    guards: guards.into_boxed_slice(),
                };
                match self.graph.record(
                    src,
                    l,
                    inst,
                    self.cfg.max_instances_per_edge,
                    self.cfg.max_edge_instances,
                ) {
                    Recorded::NewEdge => {
                        self.touch(src);
                        match self
                            .scc
                            .insert_edge(&self.graph, src, l, self.cfg.scc_rebuild_budget)
                        {
                            // Topological order respected: provably on no
                            // cycle — the common case costs no queue entry
                            // and no enumeration at all.
                            EdgeOutcome::Acyclic => {}
                            EdgeOutcome::SameComponent | EdgeOutcome::Merged => {
                                self.mark_dirty(src, l);
                            }
                        }
                    }
                    Recorded::NewInstance => {
                        self.touch(src);
                        // A fresh instance only changes feasibility for
                        // cycles through this edge — which exist only if
                        // the edge sits inside an SCC.
                        if self.scc.same_component(src, l) {
                            self.mark_dirty(src, l);
                        }
                    }
                    Recorded::Duplicate => {}
                    Recorded::Capped => self.dropped += 1,
                }
            }
        }
    }

    /// Feeds one `release` event: pops the innermost hold of `(t, l)`.
    pub fn on_release(&mut self, t: ThreadId, l: LockId) {
        if let Some(held) = self.held.get_mut(&t) {
            if let Some(pos) = held.iter().rposition(|&(h, _)| h == l) {
                held.remove(pos);
                self.unhold(l);
            }
            if self.held.get(&t).is_some_and(|h| h.is_empty()) {
                self.held.remove(&t);
            }
        }
    }

    /// Feeds a thread-exit event: forgets the thread's held set. Recorded
    /// orderings persist — they are history, not state — but the released
    /// locks' aging clocks start ticking.
    pub fn on_thread_exit(&mut self, t: ThreadId) {
        if let Some(held) = self.held.remove(&t) {
            for (l, _) in held {
                self.unhold(l);
            }
        }
    }

    /// Runs one budgeted prediction pass over the edges dirtied since the
    /// last one. Returns newly found feasible cycles, deterministically
    /// ordered; never returns the same label multiset twice.
    pub fn pass(&mut self) -> Vec<PredictedCycle> {
        self.pass_tick += 1;
        let mut budget = self.cfg.pass_budget;
        let mut found: Vec<PredictedCycle> = Vec::new();
        let mut live = match self.pending.take() {
            Some(en) => self.run_enumeration(en, &mut budget, &mut found),
            None => true,
        };
        while live {
            let Some((src, dst)) = self.dirty.pop_front() else {
                break;
            };
            self.dirty_set.remove(&(src, dst));
            if !self.scc.same_component(src, dst) {
                // Cross-component by now (a retirement split it, or the
                // queue entry was conservative): provably on no cycle.
                continue;
            }
            let en = Enumeration {
                src,
                path: vec![src, dst],
                frames: vec![(self.sorted_successors_in(dst, src), 0)],
            };
            live = self.run_enumeration(en, &mut budget, &mut found);
        }
        self.age_locks();
        found.sort_by(|a, b| a.labels.cmp(&b.labels));
        self.cycles_predicted += found.len() as u64;
        found
    }

    /// Whether any dirty edges or paused enumerations are pending.
    pub fn has_pending_work(&self) -> bool {
        !self.dirty.is_empty() || self.pending.is_some()
    }

    /// Telemetry counters.
    pub fn stats(&self) -> PredictorStats {
        PredictorStats {
            cycles_predicted: self.cycles_predicted,
            guard_suppressed: self.guard_suppressed,
            dropped: self.dropped,
            deferred: self.deferred,
            scc_merges: self.scc.merges(),
            scc_component_peak: self.scc.component_peak() as u64,
            edges_retired: self.edges_retired,
            edge_instances: self.graph.instance_count() as u64,
            locks: self.graph.lock_count() as u64,
        }
    }

    fn mark_dirty(&mut self, src: LockId, dst: LockId) {
        if self.dirty_set.insert((src, dst)) {
            self.dirty.push_back((src, dst));
        }
    }

    /// Resets `l`'s aging clock and (re-)arms its retirement probe.
    fn touch(&mut self, l: LockId) {
        self.last_active.insert(l, self.pass_tick);
        let after = self.cfg.lock_retire_after;
        if after > 0 && self.retire_queued.insert(l) {
            self.retire_queue
                .push(Reverse((self.pass_tick.saturating_add(after), l)));
        }
    }

    /// Release-side bookkeeping shared by `on_release`/`on_thread_exit`.
    fn unhold(&mut self, l: LockId) {
        if let Some(c) = self.held_count.get_mut(&l) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.held_count.remove(&l);
            }
        }
        self.touch(l);
    }

    /// Retires locks whose aging probes came due: unheld and quiescent
    /// for `lock_retire_after` passes. Amortized O(1) per event — probes
    /// are lazily revalidated against `last_active` on pop.
    fn age_locks(&mut self) {
        if self.cfg.lock_retire_after == 0 {
            return;
        }
        let after = self.cfg.lock_retire_after;
        while let Some(&Reverse((due, l))) = self.retire_queue.peek() {
            if due > self.pass_tick {
                break;
            }
            self.retire_queue.pop();
            self.retire_queued.remove(&l);
            let Some(&last) = self.last_active.get(&l) else {
                continue;
            };
            let horizon = last.saturating_add(after);
            let held = self.held_count.get(&l).is_some_and(|&c| c > 0);
            if held || horizon > self.pass_tick {
                // Touched (or still held) since the probe was armed:
                // re-arm at the fresh horizon.
                if self.retire_queued.insert(l) {
                    let due = if held {
                        self.pass_tick.saturating_add(after)
                    } else {
                        horizon
                    };
                    self.retire_queue.push(Reverse((due, l)));
                }
                continue;
            }
            let (edges, _instances) = self.graph.remove_lock(l);
            self.scc.retire(&self.graph, l);
            self.edges_retired += edges as u64;
            self.last_active.remove(&l);
        }
    }

    /// Drives a cycle enumeration until it finishes (`true`) or exhausts
    /// the pass budget (`false` — state parked in `self.pending`).
    fn run_enumeration(
        &mut self,
        mut en: Enumeration,
        budget: &mut usize,
        found: &mut Vec<PredictedCycle>,
    ) -> bool {
        loop {
            let Some(top) = en.frames.last_mut() else {
                return true;
            };
            if top.1 >= top.0.len() {
                en.frames.pop();
                en.path.pop();
                continue;
            }
            if *budget == 0 {
                self.deferred += 1;
                self.pending = Some(en);
                return false;
            }
            *budget -= 1;
            let next = top.0[top.1];
            top.1 += 1;
            if next == en.src {
                if en.path.len() >= self.cfg.min_cycle_len {
                    self.try_emit(&en.path, budget, found);
                }
                continue;
            }
            // Successor snapshots may be stale across a deferral (edges
            // retired, components split): revalidate membership live.
            if !self.scc.same_component(en.src, next)
                || en.path.contains(&next)
                || en.path.len() >= self.cfg.max_cycle_len
            {
                continue;
            }
            en.path.push(next);
            let succ = self.sorted_successors_in(next, en.src);
            en.frames.push((succ, 0));
        }
    }

    /// Sorted successors of `l` restricted to `anchor`'s component — the
    /// only nodes a cycle through `anchor` can traverse.
    fn sorted_successors_in(&self, l: LockId, anchor: LockId) -> Vec<LockId> {
        let mut v: Vec<LockId> = self
            .graph
            .successors(l)
            .filter(|&w| self.scc.same_component(anchor, w))
            .collect();
        v.sort_unstable();
        v
    }

    /// Tries to pick one instance per edge of the lock cycle `path` with
    /// pairwise-distinct threads and pairwise-disjoint guard sets, no
    /// guard naming a cycle lock. Emits on success; counts a guard
    /// suppression when only gate locks stood in the way.
    fn try_emit(&mut self, path: &[LockId], budget: &mut usize, found: &mut Vec<PredictedCycle>) {
        let n = path.len();
        // Canonical rotation (minimum lock first): the assignment — and
        // therefore the emitted label multiset — must not depend on which
        // dirty edge the enumeration happened to enter the cycle through.
        let min_pos = (0..n).min_by_key(|&i| path[i]).expect("non-empty cycle");
        let canon: Vec<LockId> = (0..n).map(|i| path[(min_pos + i) % n]).collect();
        let mut chosen: Vec<&EdgeInstance> = Vec::with_capacity(n);
        let mut guard_blocked = false;
        let ok = self.assign(&canon, 0, &mut chosen, &mut guard_blocked, budget);
        if ok {
            let mut labels: Vec<StackId> = chosen.iter().map(|i| i.hold_stack).collect();
            labels.sort_unstable();
            if self.emitted.insert(labels.clone()) {
                found.push(PredictedCycle { labels, threads: n });
            }
        } else if guard_blocked {
            // Count distinct suppressed cycles, keyed by lock set: the
            // same cycle reached via another rotation, dirty edge, or a
            // later re-dirtying instance must not inflate the counter.
            let mut key = canon;
            key.sort_unstable();
            if self.suppressed_cycles.insert(key) {
                self.guard_suppressed += 1;
            }
        }
    }

    /// Backtracking instance assignment over cycle edge `i` (the edge
    /// `path[i] → path[(i + 1) % n]`).
    fn assign<'g>(
        &'g self,
        path: &[LockId],
        i: usize,
        chosen: &mut Vec<&'g EdgeInstance>,
        guard_blocked: &mut bool,
        budget: &mut usize,
    ) -> bool {
        if i == path.len() {
            return true;
        }
        let dst = path[(i + 1) % path.len()];
        for inst in self.graph.instances(path[i], dst) {
            *budget = budget.saturating_sub(1);
            if chosen.iter().any(|c| c.thread == inst.thread) {
                continue;
            }
            // A guard that is itself a cycle lock, or one shared with an
            // already chosen instance, gates the cycle shut: in the
            // would-be deadlock state every cycle lock is pinned and a
            // common gate lock cannot be held twice.
            if inst
                .guards
                .iter()
                .any(|g| path.contains(g) || chosen.iter().any(|c| c.guards.contains(g)))
            {
                *guard_blocked = true;
                continue;
            }
            chosen.push(inst);
            if self.assign(path, i + 1, chosen, guard_blocked, budget) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> ThreadId {
        ThreadId(n)
    }

    fn l(n: u64) -> LockId {
        LockId(n)
    }

    fn s(n: u32) -> StackId {
        StackId(n)
    }

    /// Runs `t` through `lock (outer); lock (inner); unlock; unlock`.
    fn nested(
        p: &mut Predictor,
        tid: ThreadId,
        outer: (LockId, StackId),
        inner: (LockId, StackId),
    ) {
        p.on_acquired(tid, outer.0, outer.1);
        p.on_acquired(tid, inner.0, inner.1);
        p.on_release(tid, inner.0);
        p.on_release(tid, outer.0);
    }

    #[test]
    fn ab_ba_cycle_is_predicted_with_hold_stack_labels() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(11)), (l(2), s(12)));
        nested(&mut p, t(2), (l(2), s(22)), (l(1), s(21)));
        let cycles = p.pass();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].threads, 2);
        // Labels are the *hold* stacks of the edge sources: T1 held L1
        // with s11, T2 held L2 with s22 — the same multiset a detected
        // AB/BA deadlock produces.
        assert_eq!(cycles[0].labels, vec![s(11), s(22)]);
        assert_eq!(p.stats().cycles_predicted, 1);
        assert_eq!(p.stats().guard_suppressed, 0);
        assert_eq!(p.stats().scc_merges, 1);
        assert_eq!(p.stats().scc_component_peak, 2);
    }

    #[test]
    fn common_gate_lock_suppresses_the_cycle() {
        let mut p = Predictor::new(PredictionConfig::default());
        let g = l(9);
        for (tid, outer, inner) in [(t(1), l(1), l(2)), (t(2), l(2), l(1))] {
            p.on_acquired(tid, g, s(90));
            nested(&mut p, tid, (outer, s(outer.0 as u32)), (inner, s(100)));
            p.on_release(tid, g);
        }
        assert!(
            p.pass().is_empty(),
            "gate-locked cycle must not be predicted"
        );
        // Counted once per distinct cycle — not per rotation/dirty edge.
        assert_eq!(p.stats().guard_suppressed, 1);
        // A later instance with a fresh stack re-dirties an edge, but the
        // already-counted cycle must not inflate the counter.
        p.on_acquired(t(1), l(9), s(90));
        p.on_acquired(t(1), l(1), s(77));
        p.on_acquired(t(1), l(2), s(78));
        p.on_release(t(1), l(2));
        p.on_release(t(1), l(1));
        p.on_release(t(1), l(9));
        assert!(p.pass().is_empty());
        assert_eq!(p.stats().guard_suppressed, 1);
    }

    #[test]
    fn distinct_gate_locks_do_not_suppress() {
        let mut p = Predictor::new(PredictionConfig::default());
        for (tid, gate, outer, inner) in [(t(1), l(8), l(1), l(2)), (t(2), l(9), l(2), l(1))] {
            p.on_acquired(tid, gate, s(80));
            nested(&mut p, tid, (outer, s(outer.0 as u32)), (inner, s(100)));
            p.on_release(tid, gate);
        }
        // Guard sets {L8} and {L9} are disjoint: feasible.
        assert_eq!(p.pass().len(), 1);
    }

    #[test]
    fn single_thread_inversion_is_not_a_cycle() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(1), (l(2), s(3)), (l(1), s(4)));
        assert!(p.pass().is_empty(), "a thread cannot deadlock with itself");
    }

    #[test]
    fn three_thread_cycle_and_min_len_filter() {
        let mk = || {
            let mut p = Predictor::new(PredictionConfig::default());
            nested(&mut p, t(1), (l(1), s(1)), (l(2), s(12)));
            nested(&mut p, t(2), (l(2), s(2)), (l(3), s(23)));
            nested(&mut p, t(3), (l(3), s(3)), (l(1), s(31)));
            p
        };
        let mut p = mk();
        let cycles = p.pass();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].threads, 3);
        assert_eq!(cycles[0].labels, vec![s(1), s(2), s(3)]);

        let mut p4 = Predictor::new(PredictionConfig {
            min_cycle_len: 4,
            ..PredictionConfig::default()
        });
        nested(&mut p4, t(1), (l(1), s(1)), (l(2), s(12)));
        nested(&mut p4, t(2), (l(2), s(2)), (l(3), s(23)));
        nested(&mut p4, t(3), (l(3), s(3)), (l(1), s(31)));
        assert!(p4.pass().is_empty(), "3-cycle below min_cycle_len = 4");
    }

    #[test]
    fn known_cycles_are_not_re_emitted() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert_eq!(p.pass().len(), 1);
        assert!(p.pass().is_empty());
        // Replaying the same schedule dirties nothing (duplicate
        // instances) and emits nothing.
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert!(p.pass().is_empty());
        assert_eq!(p.stats().cycles_predicted, 1);
    }

    #[test]
    fn budget_starved_passes_carry_dirty_edges_over() {
        let mut p = Predictor::new(PredictionConfig {
            pass_budget: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        let mut found = Vec::new();
        for _ in 0..64 {
            found.extend(p.pass());
            if !p.has_pending_work() {
                break;
            }
        }
        assert_eq!(found.len(), 1, "carry-over must eventually find the cycle");
    }

    /// The old budgeted DFS abandoned an edge whose search exceeded one
    /// whole pass budget (a soundness hole). The condensation pass defers
    /// instead: enumeration state persists across passes, so even a
    /// 1-step budget converges with nothing dropped.
    #[test]
    fn oversized_searches_defer_and_complete() {
        let mut p = Predictor::new(PredictionConfig {
            pass_budget: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(12)));
        nested(&mut p, t(2), (l(2), s(2)), (l(3), s(23)));
        nested(&mut p, t(3), (l(3), s(3)), (l(1), s(31)));
        let mut found = Vec::new();
        let mut passes = 0;
        while p.has_pending_work() {
            found.extend(p.pass());
            passes += 1;
            assert!(passes < 256, "deferred work must drain");
        }
        assert_eq!(found.len(), 1, "the 3-cycle must be found, not dropped");
        assert_eq!(p.stats().dropped, 0, "{:?}", p.stats());
        assert!(p.stats().deferred >= 1, "{:?}", p.stats());
        assert!(p.pass().is_empty());
    }

    #[test]
    fn released_locks_record_no_edges() {
        let mut p = Predictor::new(PredictionConfig::default());
        p.on_acquired(t(1), l(1), s(1));
        p.on_release(t(1), l(1));
        p.on_acquired(t(1), l(2), s(2));
        p.on_release(t(1), l(2));
        assert_eq!(p.stats().edge_instances, 0);
        // Thread exit clears held state even without releases.
        p.on_acquired(t(2), l(1), s(3));
        p.on_thread_exit(t(2));
        p.on_acquired(t(2), l(2), s(4));
        assert_eq!(p.stats().edge_instances, 0);
    }

    #[test]
    fn reentrant_reacquisition_records_no_self_edges() {
        let mut p = Predictor::new(PredictionConfig::default());
        p.on_acquired(t(1), l(1), s(1));
        p.on_acquired(t(1), l(1), s(2));
        p.on_release(t(1), l(1));
        p.on_release(t(1), l(1));
        assert_eq!(p.stats().edge_instances, 0);
    }

    #[test]
    fn instance_caps_count_drops() {
        let mut p = Predictor::new(PredictionConfig {
            max_instances_per_edge: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(1), s(3)), (l(2), s(4)));
        assert_eq!(p.stats().edge_instances, 1);
        assert_eq!(p.stats().dropped, 1);
    }

    /// Lock aging: quiescent locks leave the graph, counted; held locks
    /// never do.
    #[test]
    fn quiescent_locks_are_retired() {
        let mut p = Predictor::new(PredictionConfig {
            lock_retire_after: 2,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert_eq!(p.pass().len(), 1);
        assert_eq!(p.stats().locks, 2);
        // A lock still held must survive any number of passes.
        p.on_acquired(t(3), l(7), s(7));
        p.on_acquired(t(3), l(1), s(8)); // re-touches L1 and edge 7->1
        for _ in 0..8 {
            p.pass();
        }
        let st = p.stats();
        assert!(st.locks >= 2, "held L7/L1 must survive: {st:?}");
        assert_eq!(p.stats().edges_retired, 2, "L2's two edges age out");
        // Releasing starts the clock; quiescence empties the graph.
        p.on_release(t(3), l(1));
        p.on_release(t(3), l(7));
        for _ in 0..4 {
            p.pass();
        }
        let st = p.stats();
        assert_eq!(st.locks, 0, "{st:?}");
        assert_eq!(st.edge_instances, 0, "{st:?}");
    }

    /// Deterministic retire-then-re-acquire regression: an aged-out lock
    /// coming back must rebuild its component from scratch and predict
    /// fresh cycles.
    #[test]
    fn retired_lock_reacquired_predicts_again() {
        let mut p = Predictor::new(PredictionConfig {
            lock_retire_after: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert_eq!(p.pass().len(), 1);
        for _ in 0..3 {
            assert!(p.pass().is_empty());
        }
        assert_eq!(p.stats().locks, 0, "aged out: {:?}", p.stats());
        assert!(p.stats().edges_retired >= 2);
        // Same locks, same stacks: the graph relearns the cycle but the
        // emitted-label dedup still holds (same signature, no re-vaccine).
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert!(p.pass().is_empty());
        // Fresh stacks after retirement: a genuinely new signature.
        nested(&mut p, t(1), (l(1), s(101)), (l(2), s(102)));
        nested(&mut p, t(2), (l(2), s(103)), (l(1), s(104)));
        let cycles = p.pass();
        assert_eq!(cycles.len(), 1, "{:?}", p.stats());
        assert_eq!(cycles[0].labels, vec![s(101), s(103)]);
    }

    /// Cloning snapshots the full state: the copy predicts exactly what
    /// the original would have.
    #[test]
    fn clone_snapshot_resumes_prediction() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        let mut snap = p.clone();
        // Only the snapshot sees the closing edge.
        nested(&mut snap, t(2), (l(2), s(3)), (l(1), s(4)));
        assert_eq!(snap.pass().len(), 1);
        assert!(p.pass().is_empty(), "original lacks the closing edge");
    }
}
