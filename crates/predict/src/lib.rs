//! # Proactive deadlock prediction for Dimmunix
//!
//! The OSDI'08 system only develops immunity *after* suffering each
//! deadlock pattern once: the monitor archives a signature when the RAG
//! contains an actual cycle. This crate closes that gap with a
//! Goodlock-style **lock-order-graph predictor**: it watches the same
//! monitor-side event stream (acquisitions and releases — never the
//! request hot path), maintains a cross-thread lock-order graph, and
//! reports order cycles that are *feasible* deadlocks — cycles for which
//! one ordering instance per edge can be chosen with pairwise-distinct
//! threads and pairwise-disjoint **guard sets** (the gate locks held
//! around each ordering; a common gate serializes the critical sections,
//! so such a cycle can never actually close — the classic gate-lock
//! false-positive suppression).
//!
//! A predicted cycle synthesizes a real deadlock signature: each chosen
//! edge instance contributes the call stack with which its thread *held*
//! the edge's source lock — exactly the hold-edge label the RAG's cycle
//! detector would have reported had the deadlock fired. The monitor
//! archives those labels through the ordinary history path (tagged
//! [`dimmunix_signature::Provenance::Predicted`]), so the epoch-published
//! match view picks the vaccine up like any suffered signature and the
//! avoidance engine yields threads away from the pattern **before its
//! first manifestation** — first-run immunity, and vendor-shippable
//! vaccines from clean test runs.
//!
//! The predictor is deliberately bounded: per-edge and global instance
//! caps, a lock-cycle length bound, and a per-pass search budget (dirty
//! edges carry over), so a pathological program degrades prediction
//! coverage instead of monitor latency. All work happens on the monitor
//! thread; the request fast path is untouched.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;

use graph::{EdgeInstance, LockOrderGraph, Recorded};

use dimmunix_rag::{LockId, ThreadId};
use dimmunix_signature::StackId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Tunables of the prediction subsystem.
#[derive(Clone, Debug)]
pub struct PredictionConfig {
    /// Upper bound on predicted signatures synthesized into the history
    /// by one process (the monitor stops archiving — but keeps counting —
    /// beyond it).
    pub max_predicted: usize,
    /// Minimum number of edges (== threads) in a reported cycle. 2 is the
    /// classic two-lock inversion.
    pub min_cycle_len: usize,
    /// Maximum number of edges in a searched cycle; bounds the DFS depth.
    pub max_cycle_len: usize,
    /// Per-edge cap on stored ordering instances.
    pub max_instances_per_edge: usize,
    /// Global cap on stored ordering instances (graph memory bound).
    pub max_edge_instances: usize,
    /// Cycle-search step budget per [`Predictor::pass`]; un-searched dirty
    /// edges carry over to the next pass.
    pub pass_budget: usize,
}

impl Default for PredictionConfig {
    fn default() -> Self {
        Self {
            max_predicted: 128,
            min_cycle_len: 2,
            max_cycle_len: 4,
            max_instances_per_edge: 8,
            max_edge_instances: 1 << 16,
            pass_budget: 1 << 13,
        }
    }
}

/// One feasible deadlock the predictor found.
#[derive(Clone, Debug)]
pub struct PredictedCycle {
    /// The synthesized signature's member stacks (sorted multiset): one
    /// hold stack per cycle edge.
    pub labels: Vec<StackId>,
    /// Number of threads (== locks == edges) on the cycle.
    pub threads: usize,
}

/// Monotonic predictor counters (telemetry).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PredictorStats {
    /// Feasible cycles reported (each becomes a candidate vaccine).
    pub cycles_predicted: u64,
    /// Distinct lock cycles refuted because every instance combination
    /// was blocked by a shared gate lock (or a cycle lock inside a guard
    /// set), counted once per cycle lock set.
    pub guard_suppressed: u64,
    /// Ordering observations dropped by the instance caps, plus dirty
    /// edges abandoned because their cycle search could not finish within
    /// one full pass budget.
    pub dropped: u64,
    /// Live edge instances in the order graph (gauge).
    pub edge_instances: u64,
    /// Locks present in the order graph (gauge).
    pub locks: u64,
}

/// The online lock-order-graph deadlock predictor. One per monitor; not
/// thread-safe (the monitor owns it).
#[derive(Debug)]
pub struct Predictor {
    cfg: PredictionConfig,
    graph: LockOrderGraph,
    /// Per-thread held multiset: `(lock, acquisition stack)` in acquisition
    /// order (reentrancy repeats the lock).
    held: HashMap<ThreadId, Vec<(LockId, StackId)>>,
    /// Edges that gained an instance since they were last searched.
    dirty: VecDeque<(LockId, LockId)>,
    dirty_set: HashSet<(LockId, LockId)>,
    /// Label multisets already reported (prevents re-emission and
    /// re-searching known cycles every pass).
    emitted: HashSet<Vec<StackId>>,
    /// Lock sets of cycles already counted as guard-suppressed, so the
    /// telemetry counts *distinct* suppressed cycles — not one event per
    /// rotation, dirty edge, or re-dirtying instance.
    suppressed_cycles: HashSet<Vec<LockId>>,
    cycles_predicted: u64,
    guard_suppressed: u64,
    dropped: u64,
}

impl Predictor {
    /// Creates an empty predictor.
    pub fn new(cfg: PredictionConfig) -> Self {
        Self {
            cfg,
            graph: LockOrderGraph::default(),
            held: HashMap::new(),
            dirty: VecDeque::new(),
            dirty_set: HashSet::new(),
            emitted: HashSet::new(),
            suppressed_cycles: HashSet::new(),
            cycles_predicted: 0,
            guard_suppressed: 0,
            dropped: 0,
        }
    }

    /// The configuration this predictor runs under.
    pub fn config(&self) -> &PredictionConfig {
        &self.cfg
    }

    /// Feeds one `acquired` event: thread `t` obtained lock `l` with call
    /// stack `stack`. Records one order-graph edge per lock already held.
    pub fn on_acquired(&mut self, t: ThreadId, l: LockId, stack: StackId) {
        let held = self.held.entry(t).or_default();
        let reentrant = held.iter().any(|&(h, _)| h == l);
        if !reentrant && !held.is_empty() {
            // Distinct held locks with their innermost hold stacks, in
            // acquisition order (deterministic edge recording).
            let mut distinct: Vec<(LockId, StackId)> = Vec::with_capacity(held.len());
            for &(h, s) in held.iter() {
                match distinct.iter_mut().find(|(d, _)| *d == h) {
                    Some(entry) => entry.1 = s, // innermost hold wins
                    None => distinct.push((h, s)),
                }
            }
            for &(src, hold_stack) in &distinct {
                // Gate set: every *other* held lock. A lock held across
                // both of two orderings serializes them.
                let mut guards: Vec<LockId> = distinct
                    .iter()
                    .map(|&(d, _)| d)
                    .filter(|&d| d != src)
                    .collect();
                guards.sort_unstable();
                let inst = EdgeInstance {
                    thread: t,
                    hold_stack,
                    guards: guards.into_boxed_slice(),
                };
                match self.graph.record(
                    src,
                    l,
                    inst,
                    self.cfg.max_instances_per_edge,
                    self.cfg.max_edge_instances,
                ) {
                    Recorded::New => {
                        if self.dirty_set.insert((src, l)) {
                            self.dirty.push_back((src, l));
                        }
                    }
                    Recorded::Duplicate => {}
                    Recorded::Capped => self.dropped += 1,
                }
            }
        }
        held.push((l, stack));
    }

    /// Feeds one `release` event: pops the innermost hold of `(t, l)`.
    pub fn on_release(&mut self, t: ThreadId, l: LockId) {
        if let Some(held) = self.held.get_mut(&t) {
            if let Some(pos) = held.iter().rposition(|&(h, _)| h == l) {
                held.remove(pos);
            }
            if held.is_empty() {
                self.held.remove(&t);
            }
        }
    }

    /// Feeds a thread-exit event: forgets the thread's held set. Recorded
    /// orderings persist — they are history, not state.
    pub fn on_thread_exit(&mut self, t: ThreadId) {
        self.held.remove(&t);
    }

    /// Runs one budgeted prediction pass over the edges dirtied since the
    /// last one. Returns newly found feasible cycles, deterministically
    /// ordered; never returns the same label multiset twice.
    pub fn pass(&mut self) -> Vec<PredictedCycle> {
        let mut budget = self.cfg.pass_budget;
        let mut found: Vec<PredictedCycle> = Vec::new();
        while let Some((src, dst)) = self.dirty.pop_front() {
            self.dirty_set.remove(&(src, dst));
            let fresh_budget = budget == self.cfg.pass_budget;
            if !self.search_edge(src, dst, &mut budget, &mut found) {
                if fresh_budget {
                    // Even an entire pass's budget cannot finish this
                    // edge's search (the DFS restarts from scratch each
                    // attempt), so retrying would livelock the queue and
                    // starve every other edge. Drop it and account for
                    // the lost coverage.
                    self.dropped += 1;
                } else if self.dirty_set.insert((src, dst)) {
                    // Ran out mid-pass: rotate to the *back* so the
                    // remaining dirty edges still progress next pass.
                    self.dirty.push_back((src, dst));
                }
                break;
            }
            if budget == 0 {
                break;
            }
        }
        found.sort_by(|a, b| a.labels.cmp(&b.labels));
        self.cycles_predicted += found.len() as u64;
        found
    }

    /// Whether any dirty edges are pending a (re-)search.
    pub fn has_pending_work(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Telemetry counters.
    pub fn stats(&self) -> PredictorStats {
        PredictorStats {
            cycles_predicted: self.cycles_predicted,
            guard_suppressed: self.guard_suppressed,
            dropped: self.dropped,
            edge_instances: self.graph.instance_count() as u64,
            locks: self.graph.lock_count() as u64,
        }
    }

    /// Searches for lock cycles through edge `start_src → start_dst`.
    /// Returns `false` when the budget ran out before the edge was fully
    /// explored.
    fn search_edge(
        &mut self,
        start_src: LockId,
        start_dst: LockId,
        budget: &mut usize,
        found: &mut Vec<PredictedCycle>,
    ) -> bool {
        if start_src == start_dst {
            return true;
        }
        // Iterative DFS from `start_dst` back to `start_src`; the path is
        // the lock sequence [start_src, start_dst, ...]. Successor lists
        // are sorted so discovery order — and hence emission order — is
        // deterministic.
        let mut path: Vec<LockId> = vec![start_src, start_dst];
        let mut frames: Vec<std::vec::IntoIter<LockId>> = vec![self.sorted_successors(start_dst)];
        while let Some(frame) = frames.last_mut() {
            let Some(next) = frame.next() else {
                frames.pop();
                path.pop();
                continue;
            };
            if *budget == 0 {
                return false;
            }
            *budget = budget.saturating_sub(1);
            if next == start_src {
                if path.len() >= self.cfg.min_cycle_len {
                    self.try_emit(&path, budget, found);
                }
                continue;
            }
            if path.contains(&next) || path.len() >= self.cfg.max_cycle_len {
                continue;
            }
            path.push(next);
            frames.push(self.sorted_successors(next));
        }
        true
    }

    fn sorted_successors(&self, l: LockId) -> std::vec::IntoIter<LockId> {
        let mut v: Vec<LockId> = self.graph.successors(l).collect();
        v.sort_unstable();
        v.into_iter()
    }

    /// Tries to pick one instance per edge of the lock cycle `path` with
    /// pairwise-distinct threads and pairwise-disjoint guard sets, no
    /// guard naming a cycle lock. Emits on success; counts a guard
    /// suppression when only gate locks stood in the way.
    fn try_emit(&mut self, path: &[LockId], budget: &mut usize, found: &mut Vec<PredictedCycle>) {
        let n = path.len();
        let mut chosen: Vec<&EdgeInstance> = Vec::with_capacity(n);
        let mut guard_blocked = false;
        let ok = self.assign(path, 0, &mut chosen, &mut guard_blocked, budget);
        if ok {
            let mut labels: Vec<StackId> = chosen.iter().map(|i| i.hold_stack).collect();
            labels.sort_unstable();
            if self.emitted.insert(labels.clone()) {
                found.push(PredictedCycle { labels, threads: n });
            }
        } else if guard_blocked {
            // Count distinct suppressed cycles, keyed by lock set: the
            // same cycle reached via another rotation, dirty edge, or a
            // later re-dirtying instance must not inflate the counter.
            let mut key: Vec<LockId> = path.to_vec();
            key.sort_unstable();
            if self.suppressed_cycles.insert(key) {
                self.guard_suppressed += 1;
            }
        }
    }

    /// Backtracking instance assignment over cycle edge `i` (the edge
    /// `path[i] → path[(i + 1) % n]`).
    fn assign<'g>(
        &'g self,
        path: &[LockId],
        i: usize,
        chosen: &mut Vec<&'g EdgeInstance>,
        guard_blocked: &mut bool,
        budget: &mut usize,
    ) -> bool {
        if i == path.len() {
            return true;
        }
        let dst = path[(i + 1) % path.len()];
        for inst in self.graph.instances(path[i], dst) {
            *budget = budget.saturating_sub(1);
            if chosen.iter().any(|c| c.thread == inst.thread) {
                continue;
            }
            // A guard that is itself a cycle lock, or one shared with an
            // already chosen instance, gates the cycle shut: in the
            // would-be deadlock state every cycle lock is pinned and a
            // common gate lock cannot be held twice.
            if inst
                .guards
                .iter()
                .any(|g| path.contains(g) || chosen.iter().any(|c| c.guards.contains(g)))
            {
                *guard_blocked = true;
                continue;
            }
            chosen.push(inst);
            if self.assign(path, i + 1, chosen, guard_blocked, budget) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> ThreadId {
        ThreadId(n)
    }

    fn l(n: u64) -> LockId {
        LockId(n)
    }

    fn s(n: u32) -> StackId {
        StackId(n)
    }

    /// Runs `t` through `lock (outer); lock (inner); unlock; unlock`.
    fn nested(
        p: &mut Predictor,
        tid: ThreadId,
        outer: (LockId, StackId),
        inner: (LockId, StackId),
    ) {
        p.on_acquired(tid, outer.0, outer.1);
        p.on_acquired(tid, inner.0, inner.1);
        p.on_release(tid, inner.0);
        p.on_release(tid, outer.0);
    }

    #[test]
    fn ab_ba_cycle_is_predicted_with_hold_stack_labels() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(11)), (l(2), s(12)));
        nested(&mut p, t(2), (l(2), s(22)), (l(1), s(21)));
        let cycles = p.pass();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].threads, 2);
        // Labels are the *hold* stacks of the edge sources: T1 held L1
        // with s11, T2 held L2 with s22 — the same multiset a detected
        // AB/BA deadlock produces.
        assert_eq!(cycles[0].labels, vec![s(11), s(22)]);
        assert_eq!(p.stats().cycles_predicted, 1);
        assert_eq!(p.stats().guard_suppressed, 0);
    }

    #[test]
    fn common_gate_lock_suppresses_the_cycle() {
        let mut p = Predictor::new(PredictionConfig::default());
        let g = l(9);
        for (tid, outer, inner) in [(t(1), l(1), l(2)), (t(2), l(2), l(1))] {
            p.on_acquired(tid, g, s(90));
            nested(&mut p, tid, (outer, s(outer.0 as u32)), (inner, s(100)));
            p.on_release(tid, g);
        }
        assert!(
            p.pass().is_empty(),
            "gate-locked cycle must not be predicted"
        );
        // Counted once per distinct cycle — not per rotation/dirty edge.
        assert_eq!(p.stats().guard_suppressed, 1);
        // A later instance with a fresh stack re-dirties an edge, but the
        // already-counted cycle must not inflate the counter.
        p.on_acquired(t(1), l(9), s(90));
        p.on_acquired(t(1), l(1), s(77));
        p.on_acquired(t(1), l(2), s(78));
        p.on_release(t(1), l(2));
        p.on_release(t(1), l(1));
        p.on_release(t(1), l(9));
        assert!(p.pass().is_empty());
        assert_eq!(p.stats().guard_suppressed, 1);
    }

    #[test]
    fn distinct_gate_locks_do_not_suppress() {
        let mut p = Predictor::new(PredictionConfig::default());
        for (tid, gate, outer, inner) in [(t(1), l(8), l(1), l(2)), (t(2), l(9), l(2), l(1))] {
            p.on_acquired(tid, gate, s(80));
            nested(&mut p, tid, (outer, s(outer.0 as u32)), (inner, s(100)));
            p.on_release(tid, gate);
        }
        // Guard sets {L8} and {L9} are disjoint: feasible.
        assert_eq!(p.pass().len(), 1);
    }

    #[test]
    fn single_thread_inversion_is_not_a_cycle() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(1), (l(2), s(3)), (l(1), s(4)));
        assert!(p.pass().is_empty(), "a thread cannot deadlock with itself");
    }

    #[test]
    fn three_thread_cycle_and_min_len_filter() {
        let mk = || {
            let mut p = Predictor::new(PredictionConfig::default());
            nested(&mut p, t(1), (l(1), s(1)), (l(2), s(12)));
            nested(&mut p, t(2), (l(2), s(2)), (l(3), s(23)));
            nested(&mut p, t(3), (l(3), s(3)), (l(1), s(31)));
            p
        };
        let mut p = mk();
        let cycles = p.pass();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].threads, 3);
        assert_eq!(cycles[0].labels, vec![s(1), s(2), s(3)]);

        let mut p4 = Predictor::new(PredictionConfig {
            min_cycle_len: 4,
            ..PredictionConfig::default()
        });
        nested(&mut p4, t(1), (l(1), s(1)), (l(2), s(12)));
        nested(&mut p4, t(2), (l(2), s(2)), (l(3), s(23)));
        nested(&mut p4, t(3), (l(3), s(3)), (l(1), s(31)));
        assert!(p4.pass().is_empty(), "3-cycle below min_cycle_len = 4");
    }

    #[test]
    fn known_cycles_are_not_re_emitted() {
        let mut p = Predictor::new(PredictionConfig::default());
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert_eq!(p.pass().len(), 1);
        assert!(p.pass().is_empty());
        // Replaying the same schedule dirties nothing (duplicate
        // instances) and emits nothing.
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        assert!(p.pass().is_empty());
        assert_eq!(p.stats().cycles_predicted, 1);
    }

    #[test]
    fn budget_starved_passes_carry_dirty_edges_over() {
        let mut p = Predictor::new(PredictionConfig {
            pass_budget: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(2), s(3)), (l(1), s(4)));
        let mut found = Vec::new();
        for _ in 0..64 {
            found.extend(p.pass());
            if !p.has_pending_work() {
                break;
            }
        }
        assert_eq!(found.len(), 1, "carry-over must eventually find the cycle");
    }

    #[test]
    fn oversized_searches_are_dropped_not_livelocked() {
        // A 3-cycle needs more than one DFS step per edge, so with a
        // 1-step budget no search can ever finish: the edges must be
        // dropped (counted) rather than retried forever.
        let mut p = Predictor::new(PredictionConfig {
            pass_budget: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(12)));
        nested(&mut p, t(2), (l(2), s(2)), (l(3), s(23)));
        nested(&mut p, t(3), (l(3), s(3)), (l(1), s(31)));
        let mut passes = 0;
        while p.has_pending_work() {
            assert!(p.pass().is_empty());
            passes += 1;
            assert!(passes < 64, "dirty queue must drain, not livelock");
        }
        assert!(p.stats().dropped >= 1, "{:?}", p.stats());
        assert!(p.pass().is_empty());
    }

    #[test]
    fn released_locks_record_no_edges() {
        let mut p = Predictor::new(PredictionConfig::default());
        p.on_acquired(t(1), l(1), s(1));
        p.on_release(t(1), l(1));
        p.on_acquired(t(1), l(2), s(2));
        p.on_release(t(1), l(2));
        assert_eq!(p.stats().edge_instances, 0);
        // Thread exit clears held state even without releases.
        p.on_acquired(t(2), l(1), s(3));
        p.on_thread_exit(t(2));
        p.on_acquired(t(2), l(2), s(4));
        assert_eq!(p.stats().edge_instances, 0);
    }

    #[test]
    fn reentrant_reacquisition_records_no_self_edges() {
        let mut p = Predictor::new(PredictionConfig::default());
        p.on_acquired(t(1), l(1), s(1));
        p.on_acquired(t(1), l(1), s(2));
        p.on_release(t(1), l(1));
        p.on_release(t(1), l(1));
        assert_eq!(p.stats().edge_instances, 0);
    }

    #[test]
    fn instance_caps_count_drops() {
        let mut p = Predictor::new(PredictionConfig {
            max_instances_per_edge: 1,
            ..PredictionConfig::default()
        });
        nested(&mut p, t(1), (l(1), s(1)), (l(2), s(2)));
        nested(&mut p, t(2), (l(1), s(3)), (l(2), s(4)));
        assert_eq!(p.stats().edge_instances, 1);
        assert_eq!(p.stats().dropped, 1);
    }
}
