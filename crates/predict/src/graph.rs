//! The cross-thread lock-order graph.
//!
//! Nodes are locks; a directed edge `src → dst` records that some thread
//! acquired `dst` while holding `src`. Each edge keeps a bounded set of
//! **instances** — who established the ordering, with which hold stack,
//! and under which **guard set** (the other locks the thread held at that
//! moment, the Goodlock "gate locks"). The instances are what the cycle
//! search combines: a lock cycle is only a *feasible* deadlock if one
//! instance per edge can be chosen such that the threads are pairwise
//! distinct and the guard sets are pairwise disjoint (a common gate lock
//! serializes the two critical sections, so the cycle can never close).

use dimmunix_rag::{LockId, ThreadId};
use dimmunix_signature::StackId;
use std::collections::HashMap;

/// One observed establishment of a lock ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct EdgeInstance {
    /// The thread that acquired the edge's destination lock.
    pub thread: ThreadId,
    /// The call stack with which the thread held the edge's *source* lock —
    /// exactly the hold-edge label a detected deadlock cycle would carry,
    /// and therefore the synthesized signature's member stack.
    pub hold_stack: StackId,
    /// All other locks held at the acquisition (sorted, source excluded):
    /// the gate locks guarding this ordering.
    pub guards: Box<[LockId]>,
}

/// Outcome of recording an ordering observation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Recorded {
    /// A new instance was stored; the edge should be (re-)searched.
    New,
    /// An identical instance already existed.
    Duplicate,
    /// The per-edge or global instance cap was hit; observation dropped.
    Capped,
}

/// The graph itself: `src → dst → instances`.
#[derive(Default, Debug)]
pub(crate) struct LockOrderGraph {
    edges: HashMap<LockId, HashMap<LockId, Vec<EdgeInstance>>>,
    instances: usize,
}

impl LockOrderGraph {
    /// Records one ordering observation, deduplicating identical instances.
    pub fn record(
        &mut self,
        src: LockId,
        dst: LockId,
        inst: EdgeInstance,
        per_edge_cap: usize,
        global_cap: usize,
    ) -> Recorded {
        if self.instances >= global_cap {
            return Recorded::Capped;
        }
        let slot = self.edges.entry(src).or_default().entry(dst).or_default();
        if slot.contains(&inst) {
            return Recorded::Duplicate;
        }
        if slot.len() >= per_edge_cap {
            return Recorded::Capped;
        }
        slot.push(inst);
        self.instances += 1;
        Recorded::New
    }

    /// The destination locks reachable from `src` by one edge.
    pub fn successors(&self, src: LockId) -> impl Iterator<Item = LockId> + '_ {
        self.edges
            .get(&src)
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// The recorded instances of edge `src → dst` (empty if absent).
    pub fn instances(&self, src: LockId, dst: LockId) -> &[EdgeInstance] {
        self.edges
            .get(&src)
            .and_then(|m| m.get(&dst))
            .map_or(&[], |v| v.as_slice())
    }

    /// Total stored edge instances.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Number of locks appearing as an edge source.
    pub fn lock_count(&self) -> usize {
        self.edges.len()
    }
}
