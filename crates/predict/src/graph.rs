//! The cross-thread lock-order graph.
//!
//! Nodes are locks; a directed edge `src → dst` records that some thread
//! acquired `dst` while holding `src`. Each edge keeps a bounded set of
//! **instances** — who established the ordering, with which hold stack,
//! and under which **guard set** (the other locks the thread held at that
//! moment, the Goodlock "gate locks"). The instances are what the cycle
//! search combines: a lock cycle is only a *feasible* deadlock if one
//! instance per edge can be chosen such that the threads are pairwise
//! distinct and the guard sets are pairwise disjoint (a common gate lock
//! serializes the two critical sections, so the cycle can never close).
//!
//! The graph also maintains a reverse adjacency index (`preds`) so the
//! condensation's backward searches and whole-lock removal (aging —
//! [`LockOrderGraph::remove_lock`]) run without scanning every edge map.

use dimmunix_rag::{LockId, ThreadId};
use dimmunix_signature::StackId;
use std::collections::{HashMap, HashSet};

/// One observed establishment of a lock ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct EdgeInstance {
    /// The thread that acquired the edge's destination lock.
    pub thread: ThreadId,
    /// The call stack with which the thread held the edge's *source* lock —
    /// exactly the hold-edge label a detected deadlock cycle would carry,
    /// and therefore the synthesized signature's member stack.
    pub hold_stack: StackId,
    /// All other locks held at the acquisition (sorted, source excluded):
    /// the gate locks guarding this ordering.
    pub guards: Box<[LockId]>,
}

/// Outcome of recording an ordering observation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Recorded {
    /// The first instance of a previously unseen edge: the condensation
    /// must be told about a new arc.
    NewEdge,
    /// A new instance on an already-known edge: the DAG shape is
    /// unchanged, but cycles through the edge gained an assignment option.
    NewInstance,
    /// An identical instance already existed.
    Duplicate,
    /// The per-edge or global instance cap was hit; observation dropped.
    Capped,
}

/// The graph itself: `src → dst → instances`, plus the reverse index.
#[derive(Clone, Default, Debug)]
pub(crate) struct LockOrderGraph {
    edges: HashMap<LockId, HashMap<LockId, Vec<EdgeInstance>>>,
    preds: HashMap<LockId, HashSet<LockId>>,
    nodes: HashSet<LockId>,
    instances: usize,
}

impl LockOrderGraph {
    /// Records one ordering observation, deduplicating identical instances.
    pub fn record(
        &mut self,
        src: LockId,
        dst: LockId,
        inst: EdgeInstance,
        per_edge_cap: usize,
        global_cap: usize,
    ) -> Recorded {
        if self.instances >= global_cap {
            return Recorded::Capped;
        }
        let out = self.edges.entry(src).or_default();
        let slot = out.entry(dst).or_default();
        let new_edge = slot.is_empty();
        let outcome = if slot.contains(&inst) {
            Recorded::Duplicate
        } else if slot.len() >= per_edge_cap {
            Recorded::Capped
        } else {
            slot.push(inst);
            self.instances += 1;
            if new_edge {
                Recorded::NewEdge
            } else {
                Recorded::NewInstance
            }
        };
        if new_edge && outcome != Recorded::NewEdge {
            // Roll back the slot the entry API just created, so a capped
            // first observation leaves no phantom (instance-less) edge.
            out.remove(&dst);
            if out.is_empty() {
                self.edges.remove(&src);
            }
        } else if outcome == Recorded::NewEdge {
            self.preds.entry(dst).or_default().insert(src);
            self.nodes.insert(src);
            self.nodes.insert(dst);
        }
        outcome
    }

    /// The destination locks reachable from `src` by one edge.
    pub fn successors(&self, src: LockId) -> impl Iterator<Item = LockId> + '_ {
        self.edges
            .get(&src)
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// The source locks with an edge into `dst`.
    pub fn predecessors(&self, dst: LockId) -> impl Iterator<Item = LockId> + '_ {
        self.preds
            .get(&dst)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The recorded instances of edge `src → dst` (empty if absent).
    pub fn instances(&self, src: LockId, dst: LockId) -> &[EdgeInstance] {
        self.edges
            .get(&src)
            .and_then(|m| m.get(&dst))
            .map_or(&[], |v| v.as_slice())
    }

    /// Removes `l` and every edge touching it (lock aging). Returns
    /// `(edges removed, instances removed)`.
    pub fn remove_lock(&mut self, l: LockId) -> (usize, usize) {
        let mut edges_removed = 0;
        let mut inst_removed = 0;
        if let Some(out) = self.edges.remove(&l) {
            for (dst, insts) in out {
                edges_removed += 1;
                inst_removed += insts.len();
                if let Some(p) = self.preds.get_mut(&dst) {
                    p.remove(&l);
                    if p.is_empty() {
                        self.preds.remove(&dst);
                    }
                }
            }
        }
        if let Some(ins) = self.preds.remove(&l) {
            for src in ins {
                let Some(m) = self.edges.get_mut(&src) else {
                    continue;
                };
                if let Some(insts) = m.remove(&l) {
                    edges_removed += 1;
                    inst_removed += insts.len();
                }
                if m.is_empty() {
                    self.edges.remove(&src);
                }
            }
        }
        self.nodes.remove(&l);
        self.instances -= inst_removed;
        (edges_removed, inst_removed)
    }

    /// Whether `l` currently appears in the graph.
    #[cfg(test)]
    pub fn has_node(&self, l: LockId) -> bool {
        self.nodes.contains(&l)
    }

    /// Total stored edge instances.
    pub fn instance_count(&self) -> usize {
        self.instances
    }

    /// Number of locks appearing as an edge endpoint.
    pub fn lock_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(t: u64, s: u32) -> EdgeInstance {
        EdgeInstance {
            thread: ThreadId(t),
            hold_stack: StackId(s),
            guards: Box::new([]),
        }
    }

    #[test]
    fn record_distinguishes_new_edges_from_new_instances() {
        let mut g = LockOrderGraph::default();
        assert_eq!(
            g.record(LockId(1), LockId(2), inst(1, 1), 8, 64),
            Recorded::NewEdge
        );
        assert_eq!(
            g.record(LockId(1), LockId(2), inst(2, 2), 8, 64),
            Recorded::NewInstance
        );
        assert_eq!(
            g.record(LockId(1), LockId(2), inst(2, 2), 8, 64),
            Recorded::Duplicate
        );
        assert_eq!(g.lock_count(), 2);
        assert_eq!(g.predecessors(LockId(2)).collect::<Vec<_>>(), [LockId(1)]);
    }

    #[test]
    fn remove_lock_severs_both_directions_and_counts() {
        let mut g = LockOrderGraph::default();
        g.record(LockId(1), LockId(2), inst(1, 1), 8, 64);
        g.record(LockId(2), LockId(3), inst(1, 2), 8, 64);
        g.record(LockId(2), LockId(3), inst(2, 3), 8, 64);
        g.record(LockId(3), LockId(1), inst(2, 4), 8, 64);
        assert_eq!(g.instance_count(), 4);
        let (edges, insts) = g.remove_lock(LockId(2));
        assert_eq!((edges, insts), (2, 3));
        assert_eq!(g.instance_count(), 1);
        assert!(!g.has_node(LockId(2)));
        assert!(g.successors(LockId(1)).next().is_none());
        assert_eq!(g.predecessors(LockId(1)).collect::<Vec<_>>(), [LockId(3)]);
        // The survivors keep working.
        assert_eq!(
            g.record(LockId(1), LockId(2), inst(3, 5), 8, 64),
            Recorded::NewEdge
        );
    }
}
