//! Incrementally maintained SCC condensation of the lock-order graph.
//!
//! The condensation keeps every lock assigned to a strongly-connected
//! component and every component assigned a **topological order value**
//! such that each cross-component edge `u → v` satisfies
//! `ord(comp(u)) < ord(comp(v))`. That invariant is what makes the
//! predictor's pass cheap: a new edge whose endpoints already respect the
//! order provably creates no cycle and costs O(log n); only an
//! order-violating edge triggers a Pearce–Kelly style restructure bounded
//! by the *affected region* — the components whose order values lie
//! between the violating endpoints — never the whole graph.
//!
//! # Complexity
//!
//! * [`Condensation::insert_edge`], order already consistent (the common
//!   acyclic case): **O(log n)** — two map lookups plus a `BTreeSet`
//!   probe when a fresh lock needs an order value.
//! * [`Condensation::insert_edge`], order violated but no cycle: one
//!   forward and one backward DFS restricted to components with order
//!   values inside the violation window, then a sort of the visited set —
//!   **O(Δ log Δ)** where Δ is the affected region (Pearce–Kelly's
//!   amortized bound), not the graph.
//! * [`Condensation::insert_edge`], cycle created: the same two DFSs; the
//!   components on a path from `v` to `u` (forward ∩ backward sets) merge
//!   into one SCC in **O(members)**.
//! * [`Condensation::retire`]: removing a lock from a multi-member
//!   component re-runs Tarjan restricted to that component's members —
//!   **O(component)**, with order values for the split parts carved out of
//!   the gap above the component's old value (a global renumber restores
//!   gaps when one closes; amortized over `ORDER_STRIDE` retirements).
//!
//! An incremental restructure whose affected region exceeds
//! `scc_rebuild_budget` component visits falls back to one full Tarjan
//! rebuild — always correct, O(graph), and counted so a pathological edge
//! stream shows up in telemetry instead of silently degrading latency.
//!
//! # Why the reorder is sound
//!
//! For an inserted edge `u → v` with `ord(cu) ≥ ord(cv)`, let `F` be the
//! components forward-reachable from `cv` with order ≤ `ord(cu)` and `B`
//! the components backward-reachable from `cu` with order ≥ `ord(cv)`.
//! Order values increase along every existing path, so any path `cv ⇝ cu`
//! stays inside the window: `F ∩ B` is exactly the set of components the
//! new edge makes strongly connected. The reorder assigns `B \ M` the
//! smallest values of the affected pool (members only move *down*),
//! `F \ M` the largest (members only move *up*), and the merged component
//! one leftover middle value. Crossing edges stay consistent: an edge into
//! `B` from inside the window implies membership in `B` (contradiction),
//! so external predecessors sit below the window and tolerate any
//! downward move; symmetrically for edges out of `F`.

use crate::graph::LockOrderGraph;
use dimmunix_rag::LockId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Identifier of one condensation component.
type CompId = u32;

/// Gap left between consecutive order values on (re)assignment, so
/// retirement splits can slot sub-components in without renumbering.
const ORDER_STRIDE: u64 = 1 << 20;

#[derive(Clone, Debug)]
struct Component {
    ord: u64,
    members: Vec<LockId>,
}

/// Outcome of [`Condensation::insert_edge`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum EdgeOutcome {
    /// The edge respects (or was made to respect) the topological order:
    /// it lies on no cycle. Nothing to enumerate.
    Acyclic,
    /// Both endpoints were already inside one SCC: the edge may close new
    /// cycles through itself.
    SameComponent,
    /// The edge merged two or more components into one SCC: every new
    /// cycle runs through it.
    Merged,
}

/// The condensation DAG: lock → component, component → topological order.
#[derive(Clone, Debug, Default)]
pub(crate) struct Condensation {
    comp: HashMap<LockId, CompId>,
    comps: HashMap<CompId, Component>,
    /// Order values currently in use (gap queries for insertions/splits).
    orders: BTreeSet<u64>,
    next_id: CompId,
    merges: u64,
    component_peak: usize,
    full_rebuilds: u64,
}

impl Condensation {
    /// Number of component merges performed (each one announced ≥ 1 new
    /// candidate cycle).
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Largest SCC ever formed (gauge; components shrink via retirement).
    pub fn component_peak(&self) -> usize {
        self.component_peak
    }

    /// Full Tarjan rebuilds taken because an incremental restructure
    /// exceeded its budget.
    #[cfg(test)]
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Whether `a` and `b` currently share a component. `false` when
    /// either lock is unknown (e.g. retired).
    pub fn same_component(&self, a: LockId, b: LockId) -> bool {
        match (self.comp.get(&a), self.comp.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Members of the component containing `l` (empty if unknown).
    #[cfg(test)]
    pub fn members_of(&self, l: LockId) -> &[LockId] {
        self.comp
            .get(&l)
            .and_then(|c| self.comps.get(c))
            .map_or(&[], |c| c.members.as_slice())
    }

    fn alloc_id(&mut self) -> CompId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Creates a singleton component for `l` at the end of the order.
    fn ensure_last(&mut self, l: LockId) -> CompId {
        if let Some(&c) = self.comp.get(&l) {
            return c;
        }
        let ord = match self.orders.last() {
            Some(&max) => match max.checked_add(ORDER_STRIDE) {
                Some(o) => o,
                None => {
                    self.renumber();
                    self.orders.last().unwrap() + ORDER_STRIDE
                }
            },
            None => ORDER_STRIDE,
        };
        self.insert_singleton(l, ord)
    }

    /// Creates a singleton component for `l` ordered strictly below `ord`
    /// (the fresh-source fast path: a brand-new lock gaining its first
    /// edge `l → v` slots in right under `v` instead of at the end, which
    /// would otherwise trigger a restructure spanning everything above
    /// `v`).
    fn ensure_below(&mut self, l: LockId, below: u64) -> CompId {
        debug_assert!(!self.comp.contains_key(&l));
        let floor = self.orders.range(..below).next_back().copied().unwrap_or(0);
        let gap = below - floor;
        if gap < 2 {
            self.renumber();
            // After renumbering every gap is ORDER_STRIDE wide; recompute
            // the target from the caller's component on the caller side.
            return CompId::MAX; // sentinel: caller must re-resolve
        }
        self.insert_singleton(l, floor + gap / 2)
    }

    fn insert_singleton(&mut self, l: LockId, ord: u64) -> CompId {
        let id = self.alloc_id();
        debug_assert!(!self.orders.contains(&ord));
        self.orders.insert(ord);
        self.comps.insert(
            id,
            Component {
                ord,
                members: vec![l],
            },
        );
        self.comp.insert(l, id);
        self.component_peak = self.component_peak.max(1);
        id
    }

    /// Records that edge `u → v` now exists in `graph` (which must already
    /// contain it) and restores the condensation invariant. `budget` caps
    /// the incremental restructure's component visits; past it the
    /// condensation falls back to a full Tarjan rebuild.
    pub fn insert_edge(
        &mut self,
        graph: &LockOrderGraph,
        u: LockId,
        v: LockId,
        budget: usize,
    ) -> EdgeOutcome {
        if u == v {
            return EdgeOutcome::Acyclic;
        }
        let cv = match self.comp.get(&v) {
            Some(&c) => c,
            None => self.ensure_last(v),
        };
        let cu = match self.comp.get(&u) {
            Some(&c) => c,
            None => {
                let below = self.comps[&cv].ord;
                let c = self.ensure_below(u, below);
                if c == CompId::MAX {
                    // A renumber ran; gaps are wide open now.
                    let below = self.comps[&self.comp[&v]].ord;
                    self.ensure_below(u, below)
                } else {
                    c
                }
            }
        };
        let cv = self.comp[&v]; // may have been renumbered/created above
        if cu == cv {
            return EdgeOutcome::SameComponent;
        }
        let (ou, ov) = (self.comps[&cu].ord, self.comps[&cv].ord);
        if ou < ov {
            return EdgeOutcome::Acyclic;
        }
        // Order violated: discover the affected region.
        let mut visits = budget;
        let fwd = self.window_dfs(graph, cv, ov, ou, Direction::Forward, &mut visits);
        let bwd = fwd
            .as_ref()
            .and_then(|_| self.window_dfs(graph, cu, ov, ou, Direction::Backward, &mut visits));
        let (Some(fwd), Some(bwd)) = (fwd, bwd) else {
            // Affected region larger than the budget: rebuild from scratch.
            self.full_rebuild(graph);
            return if self.same_component(u, v) {
                EdgeOutcome::Merged
            } else {
                EdgeOutcome::Acyclic
            };
        };
        if fwd.contains(&cu) {
            let merged: HashSet<CompId> = fwd.intersection(&bwd).copied().collect();
            self.restructure(&fwd, &bwd, Some(&merged));
            self.merges += 1;
            EdgeOutcome::Merged
        } else {
            self.restructure(&fwd, &bwd, None);
            EdgeOutcome::Acyclic
        }
    }

    /// DFS over the component graph restricted to order values in
    /// `[lo, hi]`. Returns `None` when `budget` visits were exhausted.
    fn window_dfs(
        &self,
        graph: &LockOrderGraph,
        start: CompId,
        lo: u64,
        hi: u64,
        dir: Direction,
        budget: &mut usize,
    ) -> Option<HashSet<CompId>> {
        let mut seen: HashSet<CompId> = HashSet::new();
        seen.insert(start);
        let mut stack = vec![start];
        while let Some(c) = stack.pop() {
            let members = &self.comps[&c].members;
            *budget = budget.checked_sub(1 + members.len())?;
            for &m in members {
                let mut visit = |w: LockId| {
                    let cw = self.comp[&w];
                    if seen.contains(&cw) {
                        return;
                    }
                    let ow = self.comps[&cw].ord;
                    if ow < lo || ow > hi {
                        return;
                    }
                    seen.insert(cw);
                    stack.push(cw);
                };
                match dir {
                    Direction::Forward => graph.successors(m).for_each(&mut visit),
                    Direction::Backward => graph.predecessors(m).for_each(&mut visit),
                }
            }
        }
        Some(seen)
    }

    /// Pearce–Kelly reorder of the affected region, optionally merging
    /// `merged` (= fwd ∩ bwd) into one component. See the module docs for
    /// the soundness argument.
    fn restructure(
        &mut self,
        fwd: &HashSet<CompId>,
        bwd: &HashSet<CompId>,
        merged: Option<&HashSet<CompId>>,
    ) {
        let empty = HashSet::new();
        let m = merged.unwrap_or(&empty);
        // Pool of order values owned by the affected region.
        let mut pool: Vec<u64> = fwd
            .union(bwd)
            .map(|c| self.comps[c].ord)
            .collect::<Vec<_>>();
        pool.sort_unstable();
        let mut bs: Vec<CompId> = bwd.iter().copied().filter(|c| !m.contains(c)).collect();
        bs.sort_unstable_by_key(|c| self.comps[c].ord);
        let mut fs: Vec<CompId> = fwd.iter().copied().filter(|c| !m.contains(c)).collect();
        fs.sort_unstable_by_key(|c| self.comps[c].ord);
        // Backward set sinks to the bottom of the pool, forward set floats
        // to the top; both keep their internal relative order.
        for (i, c) in bs.iter().enumerate() {
            self.comps.get_mut(c).unwrap().ord = pool[i];
        }
        let top = pool.len() - fs.len();
        for (j, c) in fs.iter().enumerate() {
            self.comps.get_mut(c).unwrap().ord = pool[top + j];
        }
        if let Some(mset) = merged {
            // Collapse the cycle components into the largest one, then
            // hand the merged component the lowest middle value; leftover
            // middle values are freed.
            let base = *mset
                .iter()
                .max_by_key(|c| (self.comps[c].members.len(), std::cmp::Reverse(**c)))
                .expect("merge set is non-empty");
            let mut members = std::mem::take(&mut self.comps.get_mut(&base).unwrap().members);
            for &c in mset {
                if c == base {
                    continue;
                }
                let dead = self.comps.remove(&c).expect("merged component exists");
                for l in dead.members {
                    self.comp.insert(l, base);
                    members.push(l);
                }
            }
            self.component_peak = self.component_peak.max(members.len());
            let slot = self.comps.get_mut(&base).unwrap();
            slot.members = members;
            slot.ord = pool[bs.len()];
            for &freed in &pool[bs.len() + 1..top] {
                self.orders.remove(&freed);
            }
        }
    }

    /// Removes `l` (already deleted from `graph`) from the condensation,
    /// re-splitting its component if the removal disconnected it.
    pub fn retire(&mut self, graph: &LockOrderGraph, l: LockId) {
        let Some(c) = self.comp.remove(&l) else {
            return;
        };
        let slot = self.comps.get_mut(&c).expect("member's component exists");
        slot.members.retain(|&m| m != l);
        if slot.members.is_empty() {
            let dead = self.comps.remove(&c).unwrap();
            self.orders.remove(&dead.ord);
            return;
        }
        if slot.members.len() == 1 {
            return;
        }
        // The survivors may have split into several SCCs.
        let members = slot.members.clone();
        let subs = tarjan_restricted(graph, &members);
        if subs.len() == 1 {
            return;
        }
        let old_ord = self.comps[&c].ord;
        // The split parts need `subs.len()` order values strictly between
        // every external predecessor (all < old_ord) and every external
        // successor (all > old_ord): values in [old_ord, next_used) work.
        let k = subs.len() as u64;
        let next_used = self
            .orders
            .range(old_ord + 1..)
            .next()
            .copied()
            .unwrap_or(u64::MAX);
        let gap = next_used - old_ord;
        if gap < k {
            self.renumber();
            self.retire_split(c, subs);
            return;
        }
        let step = gap / k;
        self.orders.remove(&old_ord);
        self.comps.remove(&c);
        // `subs` arrives in reverse topological order (Tarjan emits a
        // component only after everything it reaches).
        for (i, sub) in subs.into_iter().rev().enumerate() {
            let ord = old_ord + i as u64 * step;
            let id = self.alloc_id();
            self.orders.insert(ord);
            for &m in &sub {
                self.comp.insert(m, id);
            }
            self.comps.insert(id, Component { ord, members: sub });
        }
    }

    /// Split continuation after a renumber (every gap is stride-wide).
    fn retire_split(&mut self, c: CompId, subs: Vec<Vec<LockId>>) {
        let old_ord = self.comps[&c].ord;
        let next_used = self
            .orders
            .range(old_ord + 1..)
            .next()
            .copied()
            .unwrap_or(u64::MAX);
        let step = (next_used - old_ord) / subs.len() as u64;
        debug_assert!(step >= 1, "renumber must reopen the gap");
        self.orders.remove(&old_ord);
        self.comps.remove(&c);
        for (i, sub) in subs.into_iter().rev().enumerate() {
            let ord = old_ord + i as u64 * step;
            let id = self.alloc_id();
            self.orders.insert(ord);
            for &m in &sub {
                self.comp.insert(m, id);
            }
            self.comps.insert(id, Component { ord, members: sub });
        }
    }

    /// Reassigns every component's order value with `ORDER_STRIDE` gaps,
    /// preserving relative order.
    fn renumber(&mut self) {
        let mut by_ord: Vec<CompId> = self.comps.keys().copied().collect();
        by_ord.sort_unstable_by_key(|c| self.comps[c].ord);
        self.orders.clear();
        for (i, c) in by_ord.into_iter().enumerate() {
            let ord = (i as u64 + 1) * ORDER_STRIDE;
            self.comps.get_mut(&c).unwrap().ord = ord;
            self.orders.insert(ord);
        }
    }

    /// Full Tarjan rebuild over every known lock — the correctness
    /// fallback when an incremental restructure exceeds its budget.
    fn full_rebuild(&mut self, graph: &LockOrderGraph) {
        self.full_rebuilds += 1;
        let nodes: Vec<LockId> = self.comp.keys().copied().collect();
        let sccs = tarjan_restricted(graph, &nodes);
        let merged_before = self.comps.len();
        self.comp.clear();
        self.comps.clear();
        self.orders.clear();
        for (i, sub) in sccs.into_iter().rev().enumerate() {
            let ord = (i as u64 + 1) * ORDER_STRIDE;
            let id = self.alloc_id();
            self.orders.insert(ord);
            self.component_peak = self.component_peak.max(sub.len());
            for &m in &sub {
                self.comp.insert(m, id);
            }
            self.comps.insert(id, Component { ord, members: sub });
        }
        if self.comps.len() < merged_before {
            self.merges += 1;
        }
    }

    #[cfg(test)]
    fn check_invariants(&self, graph: &LockOrderGraph) {
        // Unique order values, one per component.
        assert_eq!(self.orders.len(), self.comps.len());
        for (id, c) in &self.comps {
            assert!(self.orders.contains(&c.ord));
            for m in &c.members {
                assert_eq!(self.comp[m], *id, "member map out of sync");
            }
        }
        // Every cross-component edge respects the order.
        for (&l, &cl) in &self.comp {
            for w in graph.successors(l) {
                let cw = self.comp[&w];
                if cl != cw {
                    assert!(
                        self.comps[&cl].ord < self.comps[&cw].ord,
                        "edge {l:?} -> {w:?} violates the topological order"
                    );
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

/// Iterative Tarjan restricted to `nodes` (edges leaving the set are
/// ignored). Returns SCCs in emission order — reverse topological.
fn tarjan_restricted(graph: &LockOrderGraph, nodes: &[LockId]) -> Vec<Vec<LockId>> {
    struct State {
        index: HashMap<LockId, u32>,
        lowlink: HashMap<LockId, u32>,
        on_stack: HashSet<LockId>,
        stack: Vec<LockId>,
        next: u32,
        out: Vec<Vec<LockId>>,
    }
    let allowed: HashSet<LockId> = nodes.iter().copied().collect();
    let mut st = State {
        index: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    // Deterministic visit order (HashMap iteration is not).
    let mut roots: Vec<LockId> = nodes.to_vec();
    roots.sort_unstable();
    for &root in &roots {
        if st.index.contains_key(&root) {
            continue;
        }
        // Explicit DFS frames: (node, sorted successors, next successor).
        let succs = |l: LockId| {
            let mut v: Vec<LockId> = graph
                .successors(l)
                .filter(|w| allowed.contains(w))
                .collect();
            v.sort_unstable();
            v
        };
        let mut frames: Vec<(LockId, Vec<LockId>, usize)> = Vec::new();
        st.index.insert(root, st.next);
        st.lowlink.insert(root, st.next);
        st.next += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        frames.push((root, succs(root), 0));
        while let Some(frame) = frames.last_mut() {
            let (v, ws, i) = (frame.0, &frame.1, &mut frame.2);
            if *i < ws.len() {
                let w = ws[*i];
                *i += 1;
                if !st.index.contains_key(&w) {
                    st.index.insert(w, st.next);
                    st.lowlink.insert(w, st.next);
                    st.next += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    frames.push((w, succs(w), 0));
                } else if st.on_stack.contains(&w) {
                    let lw = st.index[&w];
                    let lv = st.lowlink.get_mut(&v).unwrap();
                    *lv = (*lv).min(lw);
                }
                continue;
            }
            // v finished: pop an SCC if v is a root, then propagate lowlink.
            if st.lowlink[&v] == st.index[&v] {
                let mut scc = Vec::new();
                loop {
                    let w = st.stack.pop().unwrap();
                    st.on_stack.remove(&w);
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                st.out.push(scc);
            }
            frames.pop();
            if let Some(parent) = frames.last() {
                let lv = st.lowlink[&v];
                let lp = st.lowlink.get_mut(&parent.0).unwrap();
                *lp = (*lp).min(lv);
            }
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeInstance, LockOrderGraph, Recorded};
    use dimmunix_rag::ThreadId;
    use dimmunix_signature::StackId;

    fn l(n: u64) -> LockId {
        LockId(n)
    }

    fn add_edge(g: &mut LockOrderGraph, scc: &mut Condensation, u: u64, v: u64) -> EdgeOutcome {
        let inst = EdgeInstance {
            thread: ThreadId(u * 1000 + v),
            hold_stack: StackId((u * 100 + v) as u32),
            guards: Box::new([]),
        };
        match g.record(l(u), l(v), inst, 64, 1 << 20) {
            Recorded::NewEdge | Recorded::NewInstance => {}
            r => panic!("unexpected record outcome {r:?}"),
        }
        scc.insert_edge(g, l(u), l(v), 4096)
    }

    #[test]
    fn forward_chain_stays_acyclic_and_cheap() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        for i in 0..64 {
            assert_eq!(add_edge(&mut g, &mut scc, i, i + 1), EdgeOutcome::Acyclic);
        }
        scc.check_invariants(&g);
        assert_eq!(scc.merges(), 0);
        assert_eq!(scc.component_peak(), 1);
    }

    #[test]
    fn reverse_chain_reorders_without_merging() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        for i in (0..64).rev() {
            assert_eq!(add_edge(&mut g, &mut scc, i, i + 1), EdgeOutcome::Acyclic);
            scc.check_invariants(&g);
        }
        assert_eq!(scc.merges(), 0);
    }

    #[test]
    fn closing_edge_merges_the_cycle() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        for i in 0..5 {
            add_edge(&mut g, &mut scc, i, i + 1);
        }
        assert_eq!(add_edge(&mut g, &mut scc, 5, 0), EdgeOutcome::Merged);
        scc.check_invariants(&g);
        assert_eq!(scc.merges(), 1);
        assert_eq!(scc.component_peak(), 6);
        assert!(scc.same_component(l(0), l(5)));
        // A later edge inside the SCC reports SameComponent.
        assert_eq!(add_edge(&mut g, &mut scc, 3, 1), EdgeOutcome::SameComponent);
    }

    #[test]
    fn two_cycles_merge_through_a_bridge() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        // Cycle A: 0 -> 1 -> 0; cycle B: 10 -> 11 -> 10.
        add_edge(&mut g, &mut scc, 0, 1);
        assert_eq!(add_edge(&mut g, &mut scc, 1, 0), EdgeOutcome::Merged);
        add_edge(&mut g, &mut scc, 10, 11);
        assert_eq!(add_edge(&mut g, &mut scc, 11, 10), EdgeOutcome::Merged);
        // Bridge A -> B, then B -> A: one four-lock SCC.
        assert_eq!(add_edge(&mut g, &mut scc, 1, 10), EdgeOutcome::Acyclic);
        assert_eq!(add_edge(&mut g, &mut scc, 11, 0), EdgeOutcome::Merged);
        scc.check_invariants(&g);
        assert_eq!(scc.component_peak(), 4);
        assert!(scc.same_component(l(0), l(11)));
    }

    #[test]
    fn budget_exhaustion_falls_back_to_full_rebuild() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        // Two disjoint chains: 0 -> .. -> 8 (low orders) and
        // 100 -> .. -> 108 (high orders).
        for i in 0..8 {
            add_edge(&mut g, &mut scc, i, i + 1);
            add_edge(&mut g, &mut scc, 100 + i, 101 + i);
        }
        // A cross edge from the high chain into the low one violates the
        // order without closing a cycle; budget 0 forces the fallback.
        let inst = EdgeInstance {
            thread: ThreadId(999),
            hold_stack: StackId(999),
            guards: Box::new([]),
        };
        g.record(l(108), l(0), inst, 64, 1 << 20);
        assert_eq!(scc.insert_edge(&g, l(108), l(0), 0), EdgeOutcome::Acyclic);
        assert!(scc.full_rebuilds() > 0);
        scc.check_invariants(&g);
        // Closing the loop the other way merges all 18 locks, still under
        // a zero budget.
        let inst = EdgeInstance {
            thread: ThreadId(998),
            hold_stack: StackId(998),
            guards: Box::new([]),
        };
        g.record(l(8), l(100), inst, 64, 1 << 20);
        assert_eq!(scc.insert_edge(&g, l(8), l(100), 0), EdgeOutcome::Merged);
        scc.check_invariants(&g);
        assert_eq!(scc.component_peak(), 18);
    }

    #[test]
    fn retirement_splits_a_component() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        // 0 -> 1 -> 2 -> 0 and 2 -> 3 -> 4 -> 2: one SCC of 5 through 2.
        add_edge(&mut g, &mut scc, 0, 1);
        add_edge(&mut g, &mut scc, 1, 2);
        add_edge(&mut g, &mut scc, 2, 0);
        add_edge(&mut g, &mut scc, 2, 3);
        add_edge(&mut g, &mut scc, 3, 4);
        add_edge(&mut g, &mut scc, 4, 2);
        scc.check_invariants(&g);
        assert_eq!(scc.component_peak(), 5);
        assert!(scc.same_component(l(0), l(4)));
        // Retiring lock 2 severs both cycles: 4 singleton components.
        g.remove_lock(l(2));
        scc.retire(&g, l(2));
        scc.check_invariants(&g);
        assert!(!scc.same_component(l(0), l(1)));
        assert!(!scc.same_component(l(3), l(4)));
        assert!(scc.members_of(l(2)).is_empty());
    }

    #[test]
    fn retirement_of_singletons_frees_their_order() {
        let mut g = LockOrderGraph::default();
        let mut scc = Condensation::default();
        add_edge(&mut g, &mut scc, 0, 1);
        g.remove_lock(l(0));
        scc.retire(&g, l(0));
        g.remove_lock(l(1));
        scc.retire(&g, l(1));
        assert!(scc.members_of(l(0)).is_empty());
        assert_eq!(scc.orders.len(), 0);
        // Re-acquiring after retirement starts a fresh component.
        add_edge(&mut g, &mut scc, 0, 1);
        scc.check_invariants(&g);
        assert!(!scc.same_component(l(0), l(1)));
    }

    /// Randomized stress: every insertion order over random edge sets must
    /// keep the invariant, and component membership must match a from-
    /// scratch Tarjan.
    #[test]
    fn random_graphs_match_batch_tarjan() {
        let mut seed = 0x9e3779b97f4a7c15_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..40 {
            let n = 4 + rng() % 24;
            let edges = 4 + (rng() % (3 * n)) as usize;
            let mut g = LockOrderGraph::default();
            let mut scc = Condensation::default();
            let budget = if round % 3 == 0 { 2 } else { 4096 };
            for _ in 0..edges {
                let u = rng() % n;
                let v = rng() % n;
                if u == v {
                    continue;
                }
                let inst = EdgeInstance {
                    thread: ThreadId(rng() % 4),
                    hold_stack: StackId((rng() % 64) as u32),
                    guards: Box::new([]),
                };
                if matches!(
                    g.record(l(u), l(v), inst, 64, 1 << 20),
                    Recorded::NewEdge | Recorded::NewInstance
                ) {
                    scc.insert_edge(&g, l(u), l(v), budget);
                }
                // Occasional retirement of a random known lock.
                if rng() % 16 == 0 {
                    let r = rng() % n;
                    if g.has_node(l(r)) {
                        g.remove_lock(l(r));
                        scc.retire(&g, l(r));
                    }
                }
            }
            scc.check_invariants(&g);
            // Membership must agree with batch Tarjan over the live nodes.
            let nodes: Vec<LockId> = scc.comp.keys().copied().collect();
            let batch = tarjan_restricted(&g, &nodes);
            let mut expect: HashMap<LockId, usize> = HashMap::new();
            for (i, sub) in batch.iter().enumerate() {
                for &m in sub {
                    expect.insert(m, i);
                }
            }
            for &a in &nodes {
                for &b in &nodes {
                    assert_eq!(
                        scc.same_component(a, b),
                        expect[&a] == expect[&b],
                        "round {round}: membership mismatch for {a:?}, {b:?}"
                    );
                }
            }
        }
    }
}
