//! Interned call stacks and suffix matching.
//!
//! A call stack is the sequence of frames a thread had on its stack when it
//! acquired (or requested) a lock, ordered **outermost first**: the last
//! element is the frame that issued the `lock()` call itself. Signature
//! matching compares *suffixes* — the innermost `depth` frames — because a
//! deadlock pattern is "an approximate suffix of the call flow that led to
//! deadlock" (§3 of the paper).

use crate::frame::FrameId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of an interned call stack.
///
/// The paper hashes raw call stacks into per-stack metadata objects (§5.6);
/// `StackId` plays the role of the pointer to that object. Equal ids ⇔ equal
/// full stacks (within one [`StackTable`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StackId(pub u32);

impl fmt::Debug for StackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An owned call stack: outermost frame first, lock call site last.
pub type CallStack = Arc<[FrameId]>;

/// Returns the suffix of `stack` consisting of its innermost
/// `depth` frames (the whole stack if it is shorter).
pub fn suffix_of(stack: &[FrameId], depth: usize) -> &[FrameId] {
    &stack[stack.len().saturating_sub(depth)..]
}

/// Whether two stacks match at the given depth, i.e. their innermost
/// `depth`-frame suffixes are identical.
///
/// Matching is *monotonic in depth*: a match at depth `d + 1` implies a match
/// at depth `d` whenever both stacks have at least `d + 1` frames; shorter
/// stacks only match stacks with the same short suffix.
///
/// # Examples
///
/// ```
/// use dimmunix_signature::{suffix_matches, FrameTable};
///
/// let t = FrameTable::new();
/// let s1 = t.intern("main", "m.rs", 1);
/// let s2 = t.intern("main", "m.rs", 2);
/// let s3 = t.intern("update", "m.rs", 3);
/// // The paper's example: [s1, s3] vs [s2, s3].
/// assert!(suffix_matches(&[s1, s3], &[s2, s3], 1));
/// assert!(!suffix_matches(&[s1, s3], &[s2, s3], 2));
/// ```
pub fn suffix_matches(a: &[FrameId], b: &[FrameId], depth: usize) -> bool {
    suffix_of(a, depth) == suffix_of(b, depth)
}

#[derive(Default)]
struct Inner {
    stacks: Vec<CallStack>,
    by_stack: HashMap<CallStack, StackId>,
}

/// Thread-safe interner mapping call stacks to dense [`StackId`]s.
#[derive(Default)]
pub struct StackTable {
    inner: RwLock<Inner>,
}

impl StackTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a call stack (outermost frame first).
    pub fn intern(&self, frames: &[FrameId]) -> StackId {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_stack.get(frames) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_stack.get(frames) {
            return id;
        }
        let stack: CallStack = frames.into();
        let id =
            StackId(u32::try_from(inner.stacks.len()).expect("more than u32::MAX distinct stacks"));
        inner.stacks.push(Arc::clone(&stack));
        inner.by_stack.insert(stack, id);
        id
    }

    /// Returns the frames of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: StackId) -> CallStack {
        Arc::clone(&self.inner.read().stacks[id.0 as usize])
    }

    /// Number of distinct stacks interned.
    pub fn len(&self) -> usize {
        self.inner.read().stacks.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether stacks `a` and `b` match at `depth` (resolving both).
    pub fn match_at_depth(&self, a: StackId, b: StackId, depth: usize) -> bool {
        if a == b {
            return true;
        }
        let inner = self.inner.read();
        suffix_matches(
            &inner.stacks[a.0 as usize],
            &inner.stacks[b.0 as usize],
            depth,
        )
    }

    /// Approximate heap footprint in bytes (for the §7.4 resource report).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner
            .stacks
            .iter()
            .map(|s| s.len() * core::mem::size_of::<FrameId>() + core::mem::size_of::<CallStack>())
            .sum::<usize>()
            * 2 // Both the vec and the hash-map key hold an Arc clone.
    }
}

impl fmt::Debug for StackTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StackTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;

    fn frames(t: &FrameTable, lines: &[u32]) -> Vec<FrameId> {
        lines.iter().map(|&l| t.intern("f", "x.rs", l)).collect()
    }

    #[test]
    fn intern_dedupes_equal_stacks() {
        let ft = FrameTable::new();
        let st = StackTable::new();
        let a = st.intern(&frames(&ft, &[1, 2, 3]));
        let b = st.intern(&frames(&ft, &[1, 2, 3]));
        let c = st.intern(&frames(&ft, &[1, 2]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn suffix_of_basics() {
        let ft = FrameTable::new();
        let s = frames(&ft, &[1, 2, 3, 4]);
        assert_eq!(suffix_of(&s, 2), &s[2..]);
        assert_eq!(suffix_of(&s, 4), &s[..]);
        assert_eq!(suffix_of(&s, 9), &s[..]);
        assert_eq!(suffix_of(&s, 0), &[] as &[FrameId]);
    }

    #[test]
    fn matching_is_monotonic_in_depth() {
        let ft = FrameTable::new();
        let a = frames(&ft, &[1, 9, 5, 6]);
        let b = frames(&ft, &[2, 8, 5, 6]);
        assert!(suffix_matches(&a, &b, 0));
        assert!(suffix_matches(&a, &b, 1));
        assert!(suffix_matches(&a, &b, 2));
        assert!(!suffix_matches(&a, &b, 3));
        assert!(!suffix_matches(&a, &b, 4));
    }

    #[test]
    fn short_stacks_only_match_same_short_suffix() {
        let ft = FrameTable::new();
        let short = frames(&ft, &[5, 6]);
        let long = frames(&ft, &[1, 2, 5, 6]);
        // At depth 4 the suffixes have different lengths: no match.
        assert!(!suffix_matches(&short, &long, 4));
        assert!(suffix_matches(&short, &long, 2));
    }

    #[test]
    fn match_at_depth_via_table() {
        let ft = FrameTable::new();
        let st = StackTable::new();
        let a = st.intern(&frames(&ft, &[1, 5, 6]));
        let b = st.intern(&frames(&ft, &[2, 5, 6]));
        assert!(st.match_at_depth(a, b, 2));
        assert!(!st.match_at_depth(a, b, 3));
        assert!(st.match_at_depth(a, a, 17));
    }
}
