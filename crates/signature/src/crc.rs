//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) for the history
//! file footer. Hand-rolled because the workspace builds offline; the
//! constants match zlib's `crc32`, so footers are checkable with standard
//! tools.

/// Byte-indexed lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_byte_flips() {
        let base = crc32(b"# dimmunix-history v2\n");
        let torn = crc32(b"# dimmunix-history v2\x00");
        assert_ne!(base, torn);
    }
}
