//! The signature record itself.

use crate::calibration::CalibrationState;
use crate::stack::StackId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// What kind of cycle produced a signature (§5.2).
///
/// Dimmunix treats both uniformly — "cycle detection as a universal mechanism
/// for detecting both deadlocks and induced starvation" — but records the
/// kind for reporting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CycleKind {
    /// A true deadlock: a cycle of hold/allow/request edges in the RAG.
    Deadlock,
    /// Avoidance-induced starvation: a yield cycle in the RAG.
    Starvation,
}

impl fmt::Display for CycleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleKind::Deadlock => write!(f, "deadlock"),
            CycleKind::Starvation => write!(f, "starvation"),
        }
    }
}

/// How a signature entered the history.
///
/// The paper's monitor archives a signature only after *suffering* the
/// cycle (deadlock or induced starvation). The prediction subsystem
/// additionally synthesizes signatures from lock-order-graph analysis of
/// runs that never deadlocked; the provenance tag keeps those vaccines
/// distinguishable — reportable, prunable by the same false-positive
/// calibration, and shippable as files with their origin intact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Provenance {
    /// Captured from a real deadlock cycle found in the RAG.
    Detected,
    /// Captured from an avoidance-induced starvation (yield) cycle.
    Starved,
    /// Synthesized by the lock-order-graph deadlock predictor before any
    /// cycle ever manifested.
    Predicted,
}

impl Provenance {
    /// The provenance a pre-provenance (history v1) signature of `kind`
    /// defaults to: v1 histories only ever held suffered cycles.
    pub fn default_for(kind: CycleKind) -> Self {
        match kind {
            CycleKind::Deadlock => Provenance::Detected,
            CycleKind::Starvation => Provenance::Starved,
        }
    }

    /// Parses the on-disk attribute value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "detected" => Some(Provenance::Detected),
            "starved" => Some(Provenance::Starved),
            "predicted" => Some(Provenance::Predicted),
            _ => None,
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Detected => write!(f, "detected"),
            Provenance::Starved => write!(f, "starved"),
            Provenance::Predicted => write!(f, "predicted"),
        }
    }
}

/// Identifier of a signature within one [`crate::History`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

impl fmt::Debug for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig{}", self.0)
    }
}

/// A deadlock/starvation signature: a multiset of call stacks plus matching
/// metadata.
///
/// The stack multiset is stored sorted so that signature equality (used for
/// history deduplication) is canonical. All runtime-mutable metadata is
/// atomic: the avoidance hot path reads `depth`/`disabled` without any lock,
/// and only the monitor thread mutates them (§5.4: "the monitor is the only
/// thread mutating the history").
pub struct Signature {
    /// Identity within the owning history.
    pub id: SigId,
    /// Deadlock or induced-starvation pattern.
    pub kind: CycleKind,
    /// Sorted multiset of the member call stacks (one per thread in the
    /// captured cycle).
    pub stacks: Box<[StackId]>,
    /// How this signature entered the history (suffered vs. predicted).
    pub provenance: Provenance,
    /// Current matching depth (how long a suffix of each stack to compare).
    depth: AtomicU8,
    /// Disabled signatures are never avoided again (user opt-out, §5.7).
    disabled: AtomicBool,
    /// Total number of times this signature triggered an avoidance (yield).
    avoided: AtomicU64,
    /// Number of times a yield on this signature was aborted by the
    /// max-yield-duration bound (§5.7's escape hatch).
    aborts: AtomicU64,
    /// Matching-depth calibration state (§5.5); monitor-only.
    calibration: Mutex<CalibrationState>,
}

impl Signature {
    /// Creates a signature over `stacks` with the given initial matching
    /// depth and the default provenance for `kind` (a suffered cycle).
    pub fn new(id: SigId, kind: CycleKind, stacks: Vec<StackId>, depth: u8) -> Self {
        Self::with_provenance(id, kind, stacks, depth, Provenance::default_for(kind))
    }

    /// Creates a signature with an explicit provenance tag. The stack list
    /// is sorted into canonical multiset order.
    pub fn with_provenance(
        id: SigId,
        kind: CycleKind,
        mut stacks: Vec<StackId>,
        depth: u8,
        provenance: Provenance,
    ) -> Self {
        stacks.sort_unstable();
        Self {
            id,
            kind,
            stacks: stacks.into_boxed_slice(),
            provenance,
            depth: AtomicU8::new(depth),
            disabled: AtomicBool::new(false),
            avoided: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            calibration: Mutex::new(CalibrationState::disabled()),
        }
    }

    /// Number of threads involved in the captured cycle.
    pub fn size(&self) -> usize {
        self.stacks.len()
    }

    /// Current matching depth.
    pub fn depth(&self) -> u8 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Sets the matching depth (monitor/calibration only).
    pub fn set_depth(&self, depth: u8) {
        self.depth.store(depth, Ordering::Relaxed);
    }

    /// Whether avoidance of this signature has been switched off.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Relaxed)
    }

    /// Enables or disables avoidance of this signature.
    pub fn set_disabled(&self, disabled: bool) {
        self.disabled.store(disabled, Ordering::Relaxed);
    }

    /// Total avoidances (yields) attributed to this signature.
    pub fn avoided(&self) -> u64 {
        self.avoided.load(Ordering::Relaxed)
    }

    /// Records one avoidance; returns the new total.
    pub fn record_avoided(&self) -> u64 {
        self.avoided.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Restores the avoided counter (used when loading from disk).
    pub fn set_avoided(&self, n: u64) {
        self.avoided.store(n, Ordering::Relaxed);
    }

    /// Number of yield-timeout aborts recorded against this signature.
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Records one yield-timeout abort; returns the new total.
    pub fn record_abort(&self) -> u64 {
        self.aborts.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Exclusive access to the calibration state (monitor thread only).
    pub fn calibration(&self) -> parking_lot::MutexGuard<'_, CalibrationState> {
        self.calibration.lock()
    }

    /// Whether `other_stacks` (sorted) denotes the same stack multiset.
    pub fn same_stacks(&self, other_sorted: &[StackId]) -> bool {
        &*self.stacks == other_sorted
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("provenance", &self.provenance)
            .field("stacks", &self.stacks)
            .field("depth", &self.depth())
            .field("disabled", &self.is_disabled())
            .field("avoided", &self.avoided())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacks_are_canonicalized() {
        let s = Signature::new(
            SigId(0),
            CycleKind::Deadlock,
            vec![StackId(5), StackId(1), StackId(5)],
            4,
        );
        assert_eq!(&*s.stacks, &[StackId(1), StackId(5), StackId(5)]);
        assert!(s.same_stacks(&[StackId(1), StackId(5), StackId(5)]));
        assert!(!s.same_stacks(&[StackId(1), StackId(5)]));
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn multiset_duplicates_are_preserved() {
        // Different threads may deadlock with the *same* stack (§5.3), so the
        // signature must be a multiset, not a set.
        let s = Signature::new(
            SigId(0),
            CycleKind::Deadlock,
            vec![StackId(7), StackId(7)],
            4,
        );
        assert_eq!(s.size(), 2);
    }

    #[test]
    fn provenance_defaults_follow_kind() {
        let d = Signature::new(SigId(0), CycleKind::Deadlock, vec![StackId(1)], 4);
        assert_eq!(d.provenance, Provenance::Detected);
        let s = Signature::new(SigId(1), CycleKind::Starvation, vec![StackId(1)], 4);
        assert_eq!(s.provenance, Provenance::Starved);
        let p = Signature::with_provenance(
            SigId(2),
            CycleKind::Deadlock,
            vec![StackId(1)],
            4,
            Provenance::Predicted,
        );
        assert_eq!(p.provenance, Provenance::Predicted);
        for prov in [
            Provenance::Detected,
            Provenance::Starved,
            Provenance::Predicted,
        ] {
            assert_eq!(Provenance::parse(&prov.to_string()), Some(prov));
        }
        assert_eq!(Provenance::parse("banana"), None);
    }

    #[test]
    fn counters_and_flags() {
        let s = Signature::new(SigId(3), CycleKind::Starvation, vec![StackId(0)], 1);
        assert_eq!(s.depth(), 1);
        s.set_depth(7);
        assert_eq!(s.depth(), 7);
        assert!(!s.is_disabled());
        s.set_disabled(true);
        assert!(s.is_disabled());
        assert_eq!(s.record_avoided(), 1);
        assert_eq!(s.record_avoided(), 2);
        assert_eq!(s.avoided(), 2);
        assert_eq!(s.record_abort(), 1);
        assert_eq!(s.aborts(), 1);
    }
}
