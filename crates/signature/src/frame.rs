//! Interned call-site frames.
//!
//! The paper's signatures store "permutations of instruction addresses"
//! (return-address byte offsets relative to the binary, so they survive
//! ASLR). A Rust library cannot rely on stable return addresses across
//! builds, so we use the source-symbolic equivalent — `(function, file,
//! line)` triples — interned into dense [`FrameId`]s. The Java flavour of
//! Dimmunix does exactly this (`<methodName, file:line#>` strings).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A single call-site frame: where in the program a call was made.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frame {
    /// Name of the function containing the call site.
    pub function: Arc<str>,
    /// Source file of the call site.
    pub file: Arc<str>,
    /// 1-based line number of the call site.
    pub line: u32,
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.function, self.file, self.line)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.function, self.file, self.line)
    }
}

/// Dense identifier of an interned [`Frame`].
///
/// Comparing two `FrameId`s is equivalent to comparing the underlying
/// frames, provided both were interned in the same [`FrameTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u32);

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    frames: Vec<Frame>,
    by_frame: HashMap<Frame, FrameId>,
}

/// Thread-safe interner mapping [`Frame`]s to dense [`FrameId`]s.
///
/// One table is owned by each Dimmunix runtime; signatures loaded from disk
/// are re-interned through it, so `FrameId` equality is meaningful within a
/// runtime regardless of where a signature came from.
#[derive(Default)]
pub struct FrameTable {
    inner: RwLock<Inner>,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a frame, returning its id (existing or fresh).
    pub fn intern(&self, function: &str, file: &str, line: u32) -> FrameId {
        // Fast path: read lock only.
        {
            let inner = self.inner.read();
            let probe = Frame {
                function: function.into(),
                file: file.into(),
                line,
            };
            if let Some(&id) = inner.by_frame.get(&probe) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        let frame = Frame {
            function: function.into(),
            file: file.into(),
            line,
        };
        if let Some(&id) = inner.by_frame.get(&frame) {
            return id;
        }
        let id =
            FrameId(u32::try_from(inner.frames.len()).expect("more than u32::MAX distinct frames"));
        inner.frames.push(frame.clone());
        inner.by_frame.insert(frame, id);
        id
    }

    /// Returns the frame for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: FrameId) -> Frame {
        self.inner.read().frames[id.0 as usize].clone()
    }

    /// Number of distinct frames interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().frames.len()
    }

    /// Whether no frame has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint in bytes (for the §7.4 resource report).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner
            .frames
            .iter()
            .map(|f| f.function.len() + f.file.len() + core::mem::size_of::<Frame>() * 2)
            .sum::<usize>()
            + inner.frames.len() * core::mem::size_of::<FrameId>()
    }
}

impl fmt::Debug for FrameTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = FrameTable::new();
        let a = t.intern("update", "main.rs", 3);
        let b = t.intern("update", "main.rs", 3);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_sites_get_distinct_ids() {
        let t = FrameTable::new();
        let a = t.intern("update", "main.rs", 3);
        let b = t.intern("update", "main.rs", 4);
        let c = t.intern("main", "main.rs", 3);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_roundtrip() {
        let t = FrameTable::new();
        let id = t.intern("lock_req", "net.rs", 14);
        let f = t.resolve(id);
        assert_eq!(&*f.function, "lock_req");
        assert_eq!(&*f.file, "net.rs");
        assert_eq!(f.line, 14);
        assert_eq!(f.to_string(), "lock_req (net.rs:14)");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let t = std::sync::Arc::new(FrameTable::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| t.intern("f", "x.rs", i % 10))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<FrameId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(t.len(), 10);
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }
}
