//! Matching-depth calibration (§5.5 of the paper).
//!
//! A signature's matching depth trades generality against false positives:
//! too shallow a suffix flags executions that would never deadlock, too deep
//! a suffix misses re-manifestations of the same bug. Dimmunix can calibrate
//! the depth online: starting at depth 1, it performs `NA` avoidances per
//! depth while the monitor's retrospective analysis classifies each avoidance
//! as a true or false positive, then fixes the **smallest depth whose false
//! positive rate equals the minimum observed** (`FPmin` may be non-zero when
//! the pattern is input-dependent). After `NT` further avoidances — or after
//! a program upgrade — the signature is recalibrated.

use std::fmt;

/// Tunables for the calibration state machine.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationConfig {
    /// Avoidances observed per candidate depth before moving on (paper
    /// default: 20).
    pub na: u32,
    /// Avoidances after calibration completes before recalibrating (paper
    /// default: 10⁴).
    pub nt: u64,
    /// Maximum candidate matching depth (the microbenchmark uses D = 10).
    pub max_depth: u8,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            na: 20,
            nt: 10_000,
            max_depth: 10,
        }
    }
}

/// Per-depth tally kept while calibrating.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DepthStats {
    /// Avoidances attributed to this depth (directly or by fast-forward).
    pub avoidances: u32,
    /// How many of those were classified as false positives.
    pub false_positives: u32,
}

impl DepthStats {
    /// False-positive rate at this depth (0 when no avoidances recorded).
    pub fn fp_rate(&self) -> f64 {
        if self.avoidances == 0 {
            0.0
        } else {
            f64::from(self.false_positives) / f64::from(self.avoidances)
        }
    }
}

/// Which stage of its life cycle a signature's calibration is in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Calibration switched off; the signature keeps a fixed depth.
    Disabled,
    /// Walking candidate depths, collecting FP verdicts.
    Calibrating,
    /// A depth has been chosen; counting avoidances until recalibration.
    Stable,
}

/// Action the caller must take after feeding an observation into the state
/// machine.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum CalibrationUpdate {
    /// Nothing to do.
    None,
    /// Switch the signature's matching depth to the given value (moving to
    /// the next candidate depth, or restarting calibration at depth 1).
    SetDepth(u8),
    /// Calibration finished: use this depth; `fp_rate` is the rate observed
    /// at the chosen depth (`FPmin`).
    Finished {
        /// The chosen (smallest minimal-FP-rate) depth.
        depth: u8,
        /// The false-positive rate at that depth.
        fp_rate: f64,
    },
}

/// The per-signature calibration state machine.
///
/// Owned by the signature (behind a mutex) and driven exclusively by the
/// monitor thread, which is the only component that learns true/false
/// positive verdicts from the retrospective lock-inversion analysis.
#[derive(Clone, Debug)]
pub struct CalibrationState {
    phase: Phase,
    /// Candidate depth currently being evaluated (valid while calibrating).
    current: u8,
    /// `stats[d - 1]` tallies depth `d`.
    stats: Vec<DepthStats>,
    /// Avoidances since entering [`Phase::Stable`].
    avoided_since_stable: u64,
    /// Depth chosen by the most recent completed calibration.
    chosen: Option<(u8, f64)>,
    /// Number of calibrations completed over this signature's lifetime;
    /// ≥ 2 means the latest result came from a *re*-calibration.
    completed: u32,
}

impl CalibrationState {
    /// A state machine that never does anything (calibration off).
    pub fn disabled() -> Self {
        Self {
            phase: Phase::Disabled,
            current: 0,
            stats: Vec::new(),
            avoided_since_stable: 0,
            chosen: None,
            completed: 0,
        }
    }

    /// Begins (or restarts) calibration. The caller must set the signature's
    /// matching depth to the returned starting depth (always 1).
    pub fn start(&mut self, cfg: &CalibrationConfig) -> u8 {
        self.phase = Phase::Calibrating;
        self.current = 1;
        self.stats = vec![DepthStats::default(); cfg.max_depth as usize];
        self.avoided_since_stable = 0;
        1
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Depth currently under evaluation (meaningful while calibrating).
    pub fn current_depth(&self) -> u8 {
        self.current
    }

    /// Result of the last completed calibration, if any.
    pub fn chosen(&self) -> Option<(u8, f64)> {
        self.chosen
    }

    /// How many calibrations have completed over this signature's lifetime.
    /// A value ≥ 2 means the latest verdict came from a recalibration —
    /// which is when a 100%-false-positive signature may be discarded as
    /// obsolete (§8).
    pub fn completed_calibrations(&self) -> u32 {
        self.completed
    }

    /// Stats observed for `depth` during the current/most recent calibration.
    pub fn stats_for(&self, depth: u8) -> DepthStats {
        self.stats
            .get(depth as usize - 1)
            .copied()
            .unwrap_or_default()
    }

    /// Whether the last calibration concluded that *every* avoidance at the
    /// chosen depth was a false positive — the §8 signal that the signature
    /// is obsolete (e.g. the bug was fixed by an upgrade) and can be
    /// discarded.
    pub fn is_all_false_positives(&self) -> bool {
        matches!(self.chosen, Some((_, rate)) if rate >= 1.0)
    }

    /// Feeds one avoidance outcome into the machine.
    ///
    /// * `depth_used` — the matching depth in force when the avoidance was
    ///   performed (verdicts arrive asynchronously, so it may differ from
    ///   [`Self::current_depth`]).
    /// * `was_fp` — the retrospective analysis' verdict.
    /// * `deeper_would_match(d)` — whether this same execution would also
    ///   have triggered avoidance had the depth been `d`; used for the
    ///   paper's fast-forward that credits deeper depths without waiting for
    ///   `NA` fresh avoidances at each. Because suffix matching is strictly
    ///   harder at greater depths, implementations may assume calls come with
    ///   increasing `d` and stop being consulted after the first `false`.
    pub fn record_outcome(
        &mut self,
        cfg: &CalibrationConfig,
        depth_used: u8,
        was_fp: bool,
        mut deeper_would_match: impl FnMut(u8) -> bool,
    ) -> CalibrationUpdate {
        match self.phase {
            Phase::Disabled => CalibrationUpdate::None,
            Phase::Stable => {
                self.avoided_since_stable += 1;
                if self.avoided_since_stable >= cfg.nt {
                    let d = self.start(cfg);
                    CalibrationUpdate::SetDepth(d)
                } else {
                    CalibrationUpdate::None
                }
            }
            Phase::Calibrating => {
                let idx = usize::from(depth_used.clamp(1, cfg.max_depth)) - 1;
                self.stats[idx].avoidances += 1;
                if was_fp {
                    self.stats[idx].false_positives += 1;
                    // Fast-forward: the same (non-deadlocking) execution
                    // would also have been avoided — hence also been an FP —
                    // at every deeper depth that still matches.
                    for d in depth_used + 1..=cfg.max_depth {
                        if !deeper_would_match(d) {
                            break;
                        }
                        let di = usize::from(d) - 1;
                        self.stats[di].avoidances += 1;
                        self.stats[di].false_positives += 1;
                    }
                }
                // Advance past every depth that has gathered enough samples.
                let before = self.current;
                while self.current <= cfg.max_depth
                    && self.stats[usize::from(self.current) - 1].avoidances >= cfg.na
                {
                    self.current += 1;
                }
                if self.current > cfg.max_depth {
                    // Done: smallest depth attaining the minimum FP rate.
                    let min_rate = self
                        .stats
                        .iter()
                        .map(DepthStats::fp_rate)
                        .fold(f64::INFINITY, f64::min);
                    let depth = self
                        .stats
                        .iter()
                        .position(|s| s.fp_rate() <= min_rate)
                        .map(|i| i as u8 + 1)
                        .unwrap_or(1);
                    self.phase = Phase::Stable;
                    self.avoided_since_stable = 0;
                    let fp_rate = self.stats[usize::from(depth) - 1].fp_rate();
                    self.chosen = Some((depth, fp_rate));
                    self.completed += 1;
                    CalibrationUpdate::Finished { depth, fp_rate }
                } else if self.current != before {
                    CalibrationUpdate::SetDepth(self.current)
                } else {
                    CalibrationUpdate::None
                }
            }
        }
    }
}

impl fmt::Display for CalibrationState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Phase::Disabled => write!(f, "calibration disabled"),
            Phase::Calibrating => write!(f, "calibrating (depth {})", self.current),
            Phase::Stable => match self.chosen {
                Some((d, r)) => write!(f, "stable at depth {d} (FP rate {r:.2})"),
                None => write!(f, "stable"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(na: u32, nt: u64, max_depth: u8) -> CalibrationConfig {
        CalibrationConfig { na, nt, max_depth }
    }

    /// Drives a full calibration where depths < `clean_from` always produce
    /// FPs and deeper depths never do. Consistently, an FP execution only
    /// matches at depths below `clean_from` (otherwise those depths would
    /// have been FPs too).
    fn calibrate_with_fp_below(
        c: &CalibrationConfig,
        clean_from: u8,
    ) -> (CalibrationState, u8, f64) {
        let mut st = CalibrationState::disabled();
        st.start(c);
        loop {
            let d = st.current_depth();
            let was_fp = d < clean_from;
            match st.record_outcome(c, d, was_fp, |d2| d2 < clean_from) {
                CalibrationUpdate::Finished { depth, fp_rate } => return (st, depth, fp_rate),
                _ => continue,
            }
        }
    }

    #[test]
    fn disabled_state_is_inert() {
        let c = cfg(2, 10, 4);
        let mut st = CalibrationState::disabled();
        assert_eq!(st.phase(), Phase::Disabled);
        assert_eq!(
            st.record_outcome(&c, 4, true, |_| true),
            CalibrationUpdate::None
        );
    }

    #[test]
    fn chooses_smallest_clean_depth() {
        let c = cfg(3, 100, 6);
        let (_, depth, rate) = calibrate_with_fp_below(&c, 4);
        assert_eq!(depth, 4);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn all_clean_chooses_depth_one() {
        let c = cfg(2, 100, 5);
        let (_, depth, rate) = calibrate_with_fp_below(&c, 1);
        assert_eq!(depth, 1, "smallest depth is the most general pattern");
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn input_dependent_fp_keeps_nonzero_min() {
        // Every depth is an FP: FPmin = 1.0 and the smallest depth wins.
        let c = cfg(2, 100, 3);
        let (st, depth, rate) = calibrate_with_fp_below(&c, 10);
        assert_eq!(depth, 1);
        assert_eq!(rate, 1.0);
        assert!(st.is_all_false_positives());
    }

    #[test]
    fn fast_forward_credits_deeper_depths() {
        let c = cfg(2, 100, 3);
        let mut st = CalibrationState::disabled();
        st.start(&c);
        // One FP at depth 1 that also matches at depths 2 and 3.
        st.record_outcome(&c, 1, true, |_| true);
        assert_eq!(st.stats_for(2).avoidances, 1);
        assert_eq!(st.stats_for(2).false_positives, 1);
        assert_eq!(st.stats_for(3).avoidances, 1);
    }

    #[test]
    fn fast_forward_stops_at_first_non_match() {
        let c = cfg(5, 100, 4);
        let mut st = CalibrationState::disabled();
        st.start(&c);
        st.record_outcome(&c, 1, true, |d| d <= 2);
        assert_eq!(st.stats_for(2).false_positives, 1);
        assert_eq!(st.stats_for(3).false_positives, 0);
        assert_eq!(st.stats_for(4).false_positives, 0);
    }

    #[test]
    fn fast_forward_lets_later_depths_finish_early() {
        let c = cfg(2, 100, 2);
        let mut st = CalibrationState::disabled();
        st.start(&c);
        // Two FPs at depth 1 that also match at depth 2: depth 2 already has
        // NA samples when we get there, so calibration finishes immediately.
        assert_eq!(
            st.record_outcome(&c, 1, true, |_| true),
            CalibrationUpdate::None
        );
        let upd = st.record_outcome(&c, 1, true, |_| true);
        assert!(
            matches!(upd, CalibrationUpdate::Finished { .. }),
            "expected Finished, got {upd:?}"
        );
    }

    #[test]
    fn recalibrates_after_nt_avoidances() {
        let c = cfg(1, 3, 2);
        let (mut st, depth, _) = calibrate_with_fp_below(&c, 1);
        assert_eq!(depth, 1);
        assert_eq!(st.phase(), Phase::Stable);
        assert_eq!(
            st.record_outcome(&c, depth, false, |_| true),
            CalibrationUpdate::None
        );
        assert_eq!(
            st.record_outcome(&c, depth, false, |_| true),
            CalibrationUpdate::None
        );
        // Third avoidance reaches NT: restart at depth 1.
        assert_eq!(
            st.record_outcome(&c, depth, false, |_| true),
            CalibrationUpdate::SetDepth(1)
        );
        assert_eq!(st.phase(), Phase::Calibrating);
    }

    #[test]
    fn verdict_for_stale_depth_is_tolerated() {
        let c = cfg(2, 100, 4);
        let mut st = CalibrationState::disabled();
        st.start(&c);
        // A verdict arrives late, tagged with a depth we are no longer at.
        st.record_outcome(&c, 3, false, |_| false);
        assert_eq!(st.stats_for(3).avoidances, 1);
        assert_eq!(st.current_depth(), 1);
    }
}
