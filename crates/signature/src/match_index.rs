//! Suffix-hash index over the history.
//!
//! The paper's `request` hook walks the history and, for each signature,
//! checks whether the current call stack matches one of the signature's
//! member stacks at the signature's matching depth (§5.6). With the history
//! sizes the paper evaluates (≤256), a linear walk is already cheap — Fig. 7
//! shows history size contributes negligible overhead — but Dimmunix keys
//! its metadata by hashed call stack, so we provide the equivalent: an index
//! from depth-truncated stack suffixes to the signature members that carry
//! them. The avoidance runtime can use either strategy; the Criterion bench
//! `request_path` compares them (an ablation called out in DESIGN.md).

use crate::frame::FrameId;
use crate::history::History;
use crate::signature::Signature;
use crate::stack::{suffix_of, StackTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Index key: a matching depth and a depth-truncated stack suffix.
type SuffixKey = (u8, Box<[FrameId]>);
/// Signature members carrying a given suffix; the index is the member's
/// position within `signature.stacks`.
type Members = Vec<(Arc<Signature>, usize)>;

/// Immutable index over one history generation.
///
/// Rebuild (cheaply) whenever [`History::generation`] moves — membership or
/// matching-depth changes both bump it.
#[derive(Debug)]
pub struct MatchIndex {
    /// Generation of the history this index was built from.
    generation: u64,
    /// Distinct matching depths present in the history, ascending.
    depths: Vec<u8>,
    /// `(depth, suffix)` → signature members whose stack has that suffix at
    /// that depth. The member index is the position within
    /// `signature.stacks`.
    by_suffix: HashMap<SuffixKey, Members>,
}

impl MatchIndex {
    /// Builds an index over the current contents of `history`.
    pub fn build(history: &History, stacks: &StackTable) -> Self {
        let generation = history.generation();
        let snapshot = history.snapshot();
        let mut depths = Vec::new();
        let mut by_suffix: HashMap<SuffixKey, Members> = HashMap::new();
        for sig in snapshot.iter() {
            if sig.is_disabled() {
                continue;
            }
            let depth = sig.depth();
            if !depths.contains(&depth) {
                depths.push(depth);
            }
            for (member, &stack_id) in sig.stacks.iter().enumerate() {
                let frames = stacks.resolve(stack_id);
                let suffix: Box<[FrameId]> = suffix_of(&frames, depth as usize).into();
                by_suffix
                    .entry((depth, suffix))
                    .or_default()
                    .push((Arc::clone(sig), member));
            }
        }
        depths.sort_unstable();
        Self {
            generation,
            depths,
            by_suffix,
        }
    }

    /// Generation of the history this index reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the index must be rebuilt for `history`.
    pub fn is_stale(&self, history: &History) -> bool {
        self.generation != history.generation()
    }

    /// All `(signature, member_position)` pairs whose member stack matches
    /// `stack` at the signature's current depth.
    pub fn candidates<'a>(
        &'a self,
        stack: &'a [FrameId],
    ) -> impl Iterator<Item = (&'a Arc<Signature>, usize)> + 'a {
        self.depths.iter().flat_map(move |&d| {
            let key = (d, suffix_of(stack, d as usize).into());
            self.by_suffix
                .get(&key)
                .into_iter()
                .flatten()
                .map(|(sig, member)| (sig, *member))
        })
    }

    /// Number of distinct `(depth, suffix)` keys (for resource accounting).
    pub fn key_count(&self) -> usize {
        self.by_suffix.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;
    use crate::signature::CycleKind;
    use crate::stack::StackId;

    struct Env {
        frames: FrameTable,
        stacks: StackTable,
        history: History,
    }

    impl Env {
        fn new() -> Self {
            Self {
                frames: FrameTable::new(),
                stacks: StackTable::new(),
                history: History::new(),
            }
        }

        fn stack(&self, lines: &[u32]) -> StackId {
            let f: Vec<_> = lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect();
            self.stacks.intern(&f)
        }

        fn frames_of(&self, lines: &[u32]) -> Vec<FrameId> {
            lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect()
        }
    }

    #[test]
    fn finds_members_matching_at_depth() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        let sig = env
            .history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);

        // A fresh stack sharing s1's depth-2 suffix [5, 6].
        let probe = env.frames_of(&[9, 9, 5, 6]);
        let hits: Vec<_> = idx.candidates(&probe).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.id, sig.id);
        // The matched member is the one holding the [_, 5, 6] stack.
        let member_stack = env.stacks.resolve(sig.stacks[hits[0].1]);
        assert_eq!(suffix_of(&member_stack, 2), &env.frames_of(&[5, 6])[..]);

        // A stack with no matching suffix yields nothing.
        let miss = env.frames_of(&[5, 9]);
        assert_eq!(idx.candidates(&miss).count(), 0);
    }

    #[test]
    fn disabled_signatures_are_invisible() {
        let env = Env::new();
        let s = env.stack(&[1, 2]);
        let sig = env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        sig.set_disabled(true);
        env.history.touch();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(idx.candidates(&env.frames_of(&[1, 2])).count(), 0);
    }

    #[test]
    fn staleness_tracks_generation() {
        let env = Env::new();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert!(!idx.is_stale(&env.history));
        env.history
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4);
        assert!(idx.is_stale(&env.history));
    }

    #[test]
    fn mixed_depths_are_all_queried() {
        let env = Env::new();
        let shallow = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 6]), env.stack(&[2, 6])],
                1,
            )
            .unwrap();
        let deep = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 2, 3, 6]), env.stack(&[4, 5, 6, 6])],
                4,
            )
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);

        // Anything ending in 6 matches `shallow` at depth 1; only the exact
        // 4-suffix matches `deep`.
        let probe = env.frames_of(&[9, 1, 2, 3, 6]);
        let mut sig_ids: Vec<_> = idx.candidates(&probe).map(|(s, _)| s.id).collect();
        sig_ids.sort_unstable();
        sig_ids.dedup();
        assert!(sig_ids.contains(&shallow.id));
        assert!(sig_ids.contains(&deep.id));

        let probe2 = env.frames_of(&[9, 9, 9, 6]);
        let ids2: Vec<_> = idx.candidates(&probe2).map(|(s, _)| s.id).collect();
        assert!(ids2.contains(&shallow.id));
        assert!(!ids2.contains(&deep.id));
    }

    #[test]
    fn same_stack_twice_in_one_signature_yields_two_members() {
        let env = Env::new();
        let s = env.stack(&[3, 4]);
        env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        let probe = env.frames_of(&[3, 4]);
        assert_eq!(idx.candidates(&probe).count(), 2);
    }
}
