//! Suffix-hash index over the history.
//!
//! The paper's `request` hook walks the history and, for each signature,
//! checks whether the current call stack matches one of the signature's
//! member stacks at the signature's matching depth (§5.6). With the history
//! sizes the paper evaluates (≤256), a linear walk is already cheap — Fig. 7
//! shows history size contributes negligible overhead — but Dimmunix keys
//! its metadata by hashed call stack, so we provide the equivalent: an index
//! from depth-truncated stack suffixes to the signature members that carry
//! them. The avoidance runtime can use either strategy; the Criterion bench
//! `request_path` compares them (an ablation called out in DESIGN.md).
//!
//! The index is layered per depth (`depth → suffix → members`) so a lookup
//! borrows the probe suffix directly — no per-request key allocation — and
//! every candidate carries the signature's precomputed [`CoverKeys`]: one
//! `(stack, suffix, hash)` triple per member, ready for the sharded
//! engine's occupancy prechecks and canonical shard-ordered bucket lookups
//! without resolving or re-hashing member stacks on the request path.

use crate::frame::FrameId;
use crate::history::History;
use crate::signature::Signature;
use crate::stack::{suffix_hash, suffix_of, StackId, StackTable};
use std::collections::HashMap;
use std::sync::Arc;

/// One signature member's precomputed bucket key: the member stack, its
/// suffix at the signature's matching depth, and the [`suffix_hash`] of
/// `(depth, suffix)` used for shard selection and occupancy probes.
#[derive(Debug)]
pub struct MemberKey {
    /// The member stack id (`signature.stacks[i]` for member `i`).
    pub stack: StackId,
    /// The member stack's innermost `depth` frames.
    pub suffix: Box<[FrameId]>,
    /// `suffix_hash(depth, suffix)`.
    pub hash: u64,
}

/// Precomputed per-signature cover keys: everything the exact-cover search
/// needs to probe the `Allowed` buckets, one [`MemberKey`] per member in
/// `signature.stacks` order.
#[derive(Debug)]
pub struct CoverKeys {
    /// The matching depth the keys were computed at (the signature's depth
    /// when the index was built).
    pub depth: u8,
    /// One key per member, aligned with `signature.stacks`.
    pub members: Vec<MemberKey>,
}

impl CoverKeys {
    /// Computes the member bucket keys for `sig` at `depth`. The single
    /// source of the suffix/hash derivation: the index precomputes through
    /// this at build time, and the avoidance engine calls it for the rare
    /// live-depth-change fallback — both must agree on shard and
    /// fingerprint slots or the occupancy precheck would be unsound.
    pub fn compute(sig: &Signature, depth: u8, stacks: &StackTable) -> Self {
        Self {
            depth,
            members: sig
                .stacks
                .iter()
                .map(|&stack| {
                    let frames = stacks.resolve(stack);
                    let suffix: Box<[FrameId]> = suffix_of(&frames, depth as usize).into();
                    let hash = suffix_hash(depth, &suffix);
                    MemberKey {
                        stack,
                        suffix,
                        hash,
                    }
                })
                .collect(),
        }
    }
}

/// A signature member carrying a given suffix: the signature, the member's
/// position within `signature.stacks`, and the signature's shared
/// [`CoverKeys`].
type Candidate = (Arc<Signature>, usize, Arc<CoverKeys>);

/// One depth layer of the index: `suffix → candidates`.
type SuffixMap = HashMap<Box<[FrameId]>, Vec<Candidate>>;

/// Immutable index over one history generation.
///
/// Rebuild (cheaply) whenever [`History::generation`] moves — membership or
/// matching-depth changes both bump it.
#[derive(Debug)]
pub struct MatchIndex {
    /// Generation of the history this index was built from.
    generation: u64,
    /// `(depth, suffix → candidates)`, ascending by depth. Candidate order
    /// within a bucket follows history-snapshot order — the cover search
    /// (and hence yield causes) must be deterministic.
    by_depth: Vec<(u8, SuffixMap)>,
}

impl MatchIndex {
    /// Builds an index over the current contents of `history`.
    pub fn build(history: &History, stacks: &StackTable) -> Self {
        let generation = history.generation();
        let snapshot = history.snapshot();
        let mut by_depth: Vec<(u8, SuffixMap)> = Vec::new();
        for sig in snapshot.iter() {
            if sig.is_disabled() {
                continue;
            }
            let depth = sig.depth();
            let keys = Arc::new(CoverKeys::compute(sig, depth, stacks));
            let map = match by_depth.iter_mut().find(|(d, _)| *d == depth) {
                Some((_, map)) => map,
                None => {
                    by_depth.push((depth, HashMap::new()));
                    &mut by_depth.last_mut().expect("just pushed").1
                }
            };
            for (member, key) in keys.members.iter().enumerate() {
                map.entry(key.suffix.clone()).or_default().push((
                    Arc::clone(sig),
                    member,
                    Arc::clone(&keys),
                ));
            }
        }
        by_depth.sort_unstable_by_key(|&(d, _)| d);
        Self {
            generation,
            by_depth,
        }
    }

    /// Generation of the history this index reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the index must be rebuilt for `history`.
    pub fn is_stale(&self, history: &History) -> bool {
        self.generation != history.generation()
    }

    /// Distinct matching depths present in the index, ascending.
    pub fn depths(&self) -> impl Iterator<Item = u8> + '_ {
        self.by_depth.iter().map(|&(d, _)| d)
    }

    /// All `(signature, member_position, cover_keys)` triples whose member
    /// stack matches `stack` at the signature's indexed depth. Allocation-
    /// free: the probe suffix is borrowed for the bucket lookup.
    pub fn candidates<'a>(
        &'a self,
        stack: &'a [FrameId],
    ) -> impl Iterator<Item = (&'a Arc<Signature>, usize, &'a Arc<CoverKeys>)> + 'a {
        self.by_depth.iter().flat_map(move |(d, map)| {
            map.get(suffix_of(stack, *d as usize))
                .into_iter()
                .flatten()
                .map(|(sig, member, keys)| (sig, *member, keys))
        })
    }

    /// Whether any signature member matches `stack` at its indexed depth
    /// (the request fast path's relevance probe).
    pub fn matches_any(&self, stack: &[FrameId]) -> bool {
        self.by_depth
            .iter()
            .any(|(d, map)| map.contains_key(suffix_of(stack, *d as usize)))
    }

    /// Number of distinct `(depth, suffix)` keys (for resource accounting).
    pub fn key_count(&self) -> usize {
        self.by_depth.iter().map(|(_, map)| map.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;
    use crate::signature::CycleKind;
    use crate::stack::StackId;

    struct Env {
        frames: FrameTable,
        stacks: StackTable,
        history: History,
    }

    impl Env {
        fn new() -> Self {
            Self {
                frames: FrameTable::new(),
                stacks: StackTable::new(),
                history: History::new(),
            }
        }

        fn stack(&self, lines: &[u32]) -> StackId {
            let f: Vec<_> = lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect();
            self.stacks.intern(&f)
        }

        fn frames_of(&self, lines: &[u32]) -> Vec<FrameId> {
            lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect()
        }
    }

    #[test]
    fn finds_members_matching_at_depth() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        let sig = env
            .history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);

        // A fresh stack sharing s1's depth-2 suffix [5, 6].
        let probe = env.frames_of(&[9, 9, 5, 6]);
        let hits: Vec<_> = idx.candidates(&probe).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0.id, sig.id);
        assert!(idx.matches_any(&probe));
        // The matched member is the one holding the [_, 5, 6] stack.
        let member_stack = env.stacks.resolve(sig.stacks[hits[0].1]);
        assert_eq!(suffix_of(&member_stack, 2), &env.frames_of(&[5, 6])[..]);

        // A stack with no matching suffix yields nothing.
        let miss = env.frames_of(&[5, 9]);
        assert_eq!(idx.candidates(&miss).count(), 0);
        assert!(!idx.matches_any(&miss));
    }

    #[test]
    fn cover_keys_align_with_members() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        env.history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        let probe = env.frames_of(&[9, 9, 5, 6]);
        let (_, member, keys) = idx.candidates(&probe).next().unwrap();
        assert_eq!(keys.depth, 2);
        assert_eq!(keys.members.len(), 2);
        assert_eq!(keys.members[0].stack, s1);
        assert_eq!(keys.members[1].stack, s2);
        assert_eq!(&*keys.members[member].suffix, &env.frames_of(&[5, 6])[..]);
        for key in &keys.members {
            assert_eq!(key.hash, suffix_hash(2, &key.suffix));
        }
    }

    #[test]
    fn disabled_signatures_are_invisible() {
        let env = Env::new();
        let s = env.stack(&[1, 2]);
        let sig = env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        sig.set_disabled(true);
        env.history.touch();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(idx.candidates(&env.frames_of(&[1, 2])).count(), 0);
    }

    #[test]
    fn staleness_tracks_generation() {
        let env = Env::new();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert!(!idx.is_stale(&env.history));
        env.history
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4);
        assert!(idx.is_stale(&env.history));
    }

    #[test]
    fn mixed_depths_are_all_queried() {
        let env = Env::new();
        let shallow = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 6]), env.stack(&[2, 6])],
                1,
            )
            .unwrap();
        let deep = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 2, 3, 6]), env.stack(&[4, 5, 6, 6])],
                4,
            )
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(idx.depths().collect::<Vec<_>>(), vec![1, 4]);

        // Anything ending in 6 matches `shallow` at depth 1; only the exact
        // 4-suffix matches `deep`.
        let probe = env.frames_of(&[9, 1, 2, 3, 6]);
        let mut sig_ids: Vec<_> = idx.candidates(&probe).map(|(s, _, _)| s.id).collect();
        sig_ids.sort_unstable();
        sig_ids.dedup();
        assert!(sig_ids.contains(&shallow.id));
        assert!(sig_ids.contains(&deep.id));

        let probe2 = env.frames_of(&[9, 9, 9, 6]);
        let ids2: Vec<_> = idx.candidates(&probe2).map(|(s, _, _)| s.id).collect();
        assert!(ids2.contains(&shallow.id));
        assert!(!ids2.contains(&deep.id));
    }

    #[test]
    fn same_stack_twice_in_one_signature_yields_two_members() {
        let env = Env::new();
        let s = env.stack(&[3, 4]);
        env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        let probe = env.frames_of(&[3, 4]);
        assert_eq!(idx.candidates(&probe).count(), 2);
    }
}
