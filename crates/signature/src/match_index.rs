//! Suffix-hash index over the history.
//!
//! The paper's `request` hook walks the history and, for each signature,
//! checks whether the current call stack matches one of the signature's
//! member stacks at the signature's matching depth (§5.6). With the history
//! sizes the paper evaluates (≤256), a linear walk is already cheap — Fig. 7
//! shows history size contributes negligible overhead — but Dimmunix keys
//! its metadata by hashed call stack, so we provide the equivalent: an index
//! from depth-truncated stack suffixes to the signature members that carry
//! them. The avoidance runtime can use either strategy; the Criterion bench
//! `request_path` compares them (an ablation called out in DESIGN.md).
//!
//! The index is layered per depth (`depth → suffix → members`) so a lookup
//! borrows the probe suffix directly — no per-request key allocation — and
//! every candidate carries the signature's precomputed [`CoverKeys`]: one
//! `(stack, suffix, slot)` triple per member, ready for the lock-free
//! engine's occupancy prechecks and versioned-bucket reads without
//! resolving or re-hashing member stacks on the request path.
//!
//! The distinct `(depth, suffix)` member keys of one history generation
//! additionally get **dense bucket slots** assigned through a
//! [`BucketLayout`]: the avoidance engine sizes its versioned `Allowed`
//! bucket array (and, by default, its occupancy fingerprints) to exactly
//! `key_count()` slots at rebuild time — the set of bucket keys is known up
//! front because only entries whose suffix matches some signature member
//! can ever participate in an exact cover.

use crate::frame::FrameId;
use crate::history::History;
use crate::signature::Signature;
use crate::stack::{suffix_of, StackId, StackTable};
use std::collections::HashMap;
use std::sync::Arc;

/// One signature member's precomputed bucket key: the member stack, its
/// suffix at the signature's matching depth, and the dense
/// [`BucketLayout`] slot the engine's versioned bucket (and occupancy
/// fingerprint) for that key lives at.
#[derive(Debug)]
pub struct MemberKey {
    /// The member stack id (`signature.stacks[i]` for member `i`).
    pub stack: StackId,
    /// The member stack's innermost `depth` frames.
    pub suffix: Box<[FrameId]>,
    /// Dense bucket slot of `(depth, suffix)` in the generation's
    /// [`BucketLayout`]; `None` until resolved (or when the key is not in
    /// the layout — e.g. a live depth change racing a rebuild — which means
    /// no entry can be bucketed under it in the current table).
    pub slot: Option<u32>,
}

/// Precomputed per-signature cover keys: everything the exact-cover search
/// needs to probe the `Allowed` buckets, one [`MemberKey`] per member in
/// `signature.stacks` order.
#[derive(Debug)]
pub struct CoverKeys {
    /// The matching depth the keys were computed at (the signature's depth
    /// when the index was built).
    pub depth: u8,
    /// One key per member, aligned with `signature.stacks`.
    pub members: Vec<MemberKey>,
}

impl CoverKeys {
    /// Computes the member bucket keys for `sig` at `depth`, with slots
    /// unresolved. The single source of the suffix derivation: the index
    /// precomputes through this at build time, and the avoidance engine
    /// calls it for the rare live-depth-change fallback — both must agree
    /// on the key layout or the occupancy precheck would be unsound.
    pub fn compute(sig: &Signature, depth: u8, stacks: &StackTable) -> Self {
        Self {
            depth,
            members: sig
                .stacks
                .iter()
                .map(|&stack| {
                    let frames = stacks.resolve(stack);
                    let suffix: Box<[FrameId]> = suffix_of(&frames, depth as usize).into();
                    MemberKey {
                        stack,
                        suffix,
                        slot: None,
                    }
                })
                .collect(),
        }
    }

    /// Fills each member's dense bucket slot from `layout`.
    pub fn resolve(&mut self, layout: &BucketLayout) {
        for key in &mut self.members {
            key.slot = layout.slot_of(self.depth, &key.suffix);
        }
    }
}

/// One depth layer of a [`BucketLayout`]: `suffix → dense slot`.
type SlotMap = HashMap<Box<[FrameId]>, u32>;

/// Dense bucket-slot directory of one history generation: every distinct
/// `(depth, suffix)` key across the enabled signatures' members gets one
/// slot in `[0, len)`, assigned in deterministic history-snapshot × member
/// order. The avoidance engine sizes its versioned bucket array from
/// [`BucketLayout::len`] and routes every bucket insert/remove/probe
/// through [`BucketLayout::slot_of`].
///
/// Slot assignments are **append-stable**: because slots are handed out in
/// snapshot × member order and the history only ever appends (removals and
/// depth changes force a full rebuild), [`BucketLayout::extended`] over the
/// appended signatures produces bit-identical slot numbering to a fresh
/// [`BucketLayout::build`] over the grown history — existing slots are
/// never renumbered, new keys take slots `[base.len, ..)`. Depth layers are
/// `Arc`-shared with the base layout; only layers gaining keys are cloned.
#[derive(Debug, Default)]
pub struct BucketLayout {
    /// `(depth, suffix → slot)`, ascending by depth (borrowed lookups).
    by_depth: Vec<(u8, Arc<SlotMap>)>,
    len: u32,
}

impl BucketLayout {
    /// Builds the layout for the current contents of `history`.
    pub fn build(history: &History, stacks: &StackTable) -> Self {
        Self::build_from(&history.snapshot(), stacks)
    }

    /// Builds the layout for one explicit signature snapshot. Consumers
    /// that also derive *other* state from the signature list (e.g.
    /// [`MatchIndex::build`]'s candidate sets) must build everything from
    /// a single snapshot — the history may be appended to concurrently,
    /// and state derived from two reads can disagree about which
    /// signatures exist.
    pub fn build_from(snapshot: &[Arc<Signature>], stacks: &StackTable) -> Self {
        let mut layout = Self::default();
        for sig in snapshot {
            layout.add_signature(sig, stacks);
        }
        layout.by_depth.sort_unstable_by_key(|&(d, _)| d);
        layout
    }

    /// Extends `base` with the member keys of `new_sigs` (appended to the
    /// history after `base` was built), without renumbering any existing
    /// slot. See the type docs for why the result is identical to a fresh
    /// build over the grown history.
    pub fn extended(base: &Self, new_sigs: &[Arc<Signature>], stacks: &StackTable) -> Self {
        let mut layout = Self {
            by_depth: base.by_depth.clone(),
            len: base.len,
        };
        for sig in new_sigs {
            layout.add_signature(sig, stacks);
        }
        layout.by_depth.sort_unstable_by_key(|&(d, _)| d);
        layout
    }

    /// Assigns dense slots to `sig`'s not-yet-present member keys.
    fn add_signature(&mut self, sig: &Arc<Signature>, stacks: &StackTable) {
        if sig.is_disabled() {
            return;
        }
        let depth = sig.depth();
        for &stack in &sig.stacks {
            let frames = stacks.resolve(stack);
            let suffix = suffix_of(&frames, depth as usize);
            let map = match self.by_depth.iter_mut().find(|(d, _)| *d == depth) {
                Some((_, map)) => map,
                None => {
                    self.by_depth.push((depth, Arc::new(HashMap::new())));
                    &mut self.by_depth.last_mut().expect("just pushed").1
                }
            };
            if !map.contains_key(suffix) {
                Arc::make_mut(map).insert(suffix.into(), self.len);
                self.len += 1;
            }
        }
    }

    /// Number of distinct `(depth, suffix)` keys (== bucket slots).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the layout has no keys (empty or all-disabled history).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense slot of `(depth, suffix)`, if that key is in the layout.
    pub fn slot_of(&self, depth: u8, suffix: &[FrameId]) -> Option<u32> {
        self.by_depth
            .iter()
            .find(|(d, _)| *d == depth)
            .and_then(|(_, map)| map.get(suffix).copied())
    }

    /// Distinct matching depths present, ascending.
    pub fn depths(&self) -> impl Iterator<Item = u8> + '_ {
        self.by_depth.iter().map(|&(d, _)| d)
    }

    /// Iterates the `(depth, suffix, slot)` keys whose slot is `>= from` —
    /// for a layout produced by [`BucketLayout::extended`], exactly the
    /// keys appended on top of a base layout of length `from` (append
    /// stability: surviving keys keep slots `< from`). The delta rebuild
    /// uses this to compute which buckets need patching.
    pub fn keys_from(&self, from: u32) -> impl Iterator<Item = (u8, &[FrameId], u32)> {
        self.by_depth.iter().flat_map(move |(d, map)| {
            map.iter().filter_map(move |(suffix, &slot)| {
                (slot >= from).then_some((*d, &suffix[..], slot))
            })
        })
    }

    /// Whether any depth's suffix of `stack` is a member key — i.e. whether
    /// an `Allowed` entry with these frames could ever participate in an
    /// exact cover under this layout (the request fast path's relevance
    /// probe).
    pub fn is_relevant(&self, stack: &[FrameId]) -> bool {
        self.by_depth
            .iter()
            .any(|(d, map)| map.contains_key(suffix_of(stack, *d as usize)))
    }
}

/// A signature member carrying a given suffix.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The signature.
    pub sig: Arc<Signature>,
    /// The matching member's position within `signature.stacks`.
    pub member: usize,
    /// The signature's shared cover keys (slots resolved).
    pub keys: Arc<CoverKeys>,
}

/// All candidates sharing one `(depth, suffix)` key, with the occupancy
/// precheck's inputs laid out flat: a hot suffix can carry dozens of
/// candidates, the precheck runs for every one on every request hitting
/// the suffix, and in the common all-refuted case the scan must not chase
/// a single per-candidate `Arc` — just contiguous slot indices plus one
/// fingerprint load each.
#[derive(Debug, Default, Clone)]
pub struct CandidateSet {
    candidates: Vec<Candidate>,
    /// Concatenation of every candidate's *other-member* bucket slots.
    others_flat: Vec<u32>,
    /// `candidates.len() + 1` offsets into `others_flat` (candidate `i`
    /// owns `others_flat[spans[i]..spans[i + 1]]`).
    spans: Vec<u32>,
    /// The set's own `(depth, suffix)` bucket slot — the bucket the
    /// *requester's* entries land in.
    self_slot: u32,
    /// Whether some candidate's other-member slots include `self_slot`
    /// (a signature pairing two stacks with the same suffix). Such a
    /// candidate can cover out of the requester's own bucket, so the O(1)
    /// only-own-bucket-non-empty reject does not apply.
    self_paired: bool,
    /// Whether some candidate has *no* other members (a single-member
    /// signature): it is instantiated by the anchor request alone, so no
    /// emptiness argument can ever refute the set wholesale.
    lone_member: bool,
}

impl CandidateSet {
    fn new(self_slot: u32) -> Self {
        Self {
            candidates: Vec::new(),
            others_flat: Vec::new(),
            spans: vec![0],
            self_slot,
            self_paired: false,
            lone_member: false,
        }
    }

    fn push(&mut self, candidate: Candidate, other_slots: impl Iterator<Item = u32>) {
        let start = self.others_flat.len();
        self.others_flat.extend(other_slots);
        self.self_paired |= self.others_flat[start..].contains(&self.self_slot);
        self.lone_member |= self.others_flat.len() == start;
        self.spans.push(self.others_flat.len() as u32);
        self.candidates.push(candidate);
    }

    /// The candidates, in history-snapshot × member order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Candidate `i`'s other-member bucket slots (the occupancy precheck
    /// inputs).
    pub fn other_slots(&self, i: usize) -> &[u32] {
        &self.others_flat[self.spans[i] as usize..self.spans[i + 1] as usize]
    }

    /// Every candidate's other-member slots, concatenated. Every candidate
    /// contributes at least one slot (signatures have ≥ 2 members), so if
    /// *all* of these buckets are provably empty, every candidate in the
    /// set is refuted at once — the whole-set fast reject.
    pub fn all_other_slots(&self) -> &[u32] {
        &self.others_flat
    }

    /// The set's own `(depth, suffix)` bucket slot. Together with
    /// [`CandidateSet::self_paired`] this enables an O(1) whole-set
    /// reject: if the table's only non-empty bucket is this one and no
    /// candidate is self-paired, every candidate has an empty other
    /// bucket.
    pub fn self_slot(&self) -> u32 {
        self.self_slot
    }

    /// Whether some candidate's other-member slots include
    /// [`CandidateSet::self_slot`] (see there).
    pub fn self_paired(&self) -> bool {
        self.self_paired
    }

    /// Whether some candidate is a single-member signature (see the
    /// `lone_member` field): if so, *no* whole-set emptiness reject is
    /// valid — the anchor request instantiates such a candidate by
    /// itself.
    pub fn has_lone_member(&self) -> bool {
        self.lone_member
    }
}

/// One depth layer of the index: `suffix → candidates`.
type SuffixMap = HashMap<Box<[FrameId]>, CandidateSet>;

/// Immutable index over one history generation.
///
/// Rebuild whenever [`History::generation`] moves — membership or
/// matching-depth changes both bump it. For pure appends,
/// [`MatchIndex::extended`] patches a copy instead of rebuilding: depth
/// layers untouched by the appended signatures are `Arc`-shared with the
/// base index, and existing candidates keep their (slot-stable, see
/// [`BucketLayout`]) precomputed [`CoverKeys`].
#[derive(Debug)]
pub struct MatchIndex {
    /// Generation of the history this index was built from.
    generation: u64,
    /// `(depth, suffix → candidates)`, ascending by depth. Candidate order
    /// within a bucket follows history-snapshot order — the cover search
    /// (and hence yield causes) must be deterministic.
    by_depth: Vec<(u8, Arc<SuffixMap>)>,
    /// Dense bucket-slot directory for this generation; every candidate's
    /// [`CoverKeys`] members carry slots resolved against it.
    layout: Arc<BucketLayout>,
}

impl MatchIndex {
    /// Builds an index over the current contents of `history`.
    pub fn build(history: &History, stacks: &StackTable) -> Self {
        // Generation first, then ONE snapshot for both the layout and the
        // candidate sets. Appends may land between the two reads; that
        // direction is benign — the index then *contains* signatures newer
        // than the generation it advertises, and the next (delta) rebuild
        // re-derives them idempotently. What must never happen is the
        // layout and the candidates coming from *different* snapshots: a
        // candidate whose member key the layout missed has no slot to
        // resolve against (this was an observed panic under concurrent
        // vaccination).
        let generation = history.generation();
        let snapshot = history.snapshot();
        let layout = Arc::new(BucketLayout::build_from(&snapshot, stacks));
        let mut index = Self {
            generation,
            by_depth: Vec::new(),
            layout,
        };
        for sig in snapshot.iter() {
            index.add_signature(sig, stacks);
        }
        index.by_depth.sort_unstable_by_key(|&(d, _)| d);
        index
    }

    /// Extends `base` with candidates for `new_sigs` (appended to the
    /// history after `base` was built) under `layout` (itself extended from
    /// `base.layout()`), producing the index `generation` describes. Because
    /// appends land at the snapshot's tail and slots are append-stable, the
    /// result is identical to a fresh [`MatchIndex::build`] at that
    /// generation — at the cost of the affected depth layers only.
    pub fn extended(
        base: &Self,
        generation: u64,
        layout: Arc<BucketLayout>,
        new_sigs: &[Arc<Signature>],
        stacks: &StackTable,
    ) -> Self {
        let mut index = Self {
            generation,
            by_depth: base.by_depth.clone(),
            layout,
        };
        for sig in new_sigs {
            index.add_signature(sig, stacks);
        }
        index.by_depth.sort_unstable_by_key(|&(d, _)| d);
        index
    }

    /// Appends `sig`'s members to the candidate sets of its depth layer.
    fn add_signature(&mut self, sig: &Arc<Signature>, stacks: &StackTable) {
        if sig.is_disabled() {
            return;
        }
        let depth = sig.depth();
        let mut keys = CoverKeys::compute(sig, depth, stacks);
        keys.resolve(&self.layout);
        let keys = Arc::new(keys);
        let map = match self.by_depth.iter_mut().find(|(d, _)| *d == depth) {
            Some((_, map)) => map,
            None => {
                self.by_depth.push((depth, Arc::new(HashMap::new())));
                &mut self.by_depth.last_mut().expect("just pushed").1
            }
        };
        let map = Arc::make_mut(map);
        for (member, key) in keys.members.iter().enumerate() {
            let others = keys
                .members
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != member)
                .map(|(_, mk)| mk.slot.expect("key resolved against own layout"));
            let self_slot = key.slot.expect("key resolved against own layout");
            map.entry(key.suffix.clone())
                .or_insert_with(|| CandidateSet::new(self_slot))
                .push(
                    Candidate {
                        sig: Arc::clone(sig),
                        member,
                        keys: Arc::clone(&keys),
                    },
                    others,
                );
        }
    }

    /// Generation of the history this index reflects.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The dense bucket-slot directory this index's cover keys resolve
    /// against.
    pub fn layout(&self) -> &Arc<BucketLayout> {
        &self.layout
    }

    /// Whether the index must be rebuilt for `history`.
    pub fn is_stale(&self, history: &History) -> bool {
        self.generation != history.generation()
    }

    /// Distinct matching depths present in the index, ascending.
    pub fn depths(&self) -> impl Iterator<Item = u8> + '_ {
        self.by_depth.iter().map(|&(d, _)| d)
    }

    /// All [`Candidate`]s whose member stack matches `stack` at the
    /// signature's indexed depth. Allocation-free: the probe suffix is
    /// borrowed for the bucket lookup.
    pub fn candidates<'a>(&'a self, stack: &'a [FrameId]) -> impl Iterator<Item = &'a Candidate> {
        self.candidate_sets(stack)
            .flat_map(|set| set.candidates().iter())
    }

    /// The per-`(depth, suffix)` [`CandidateSet`]s matching `stack` — at
    /// most one per depth layer. The avoidance engine iterates these so its
    /// occupancy precheck runs over each set's flat slot arrays.
    pub fn candidate_sets<'a>(
        &'a self,
        stack: &'a [FrameId],
    ) -> impl Iterator<Item = &'a CandidateSet> {
        self.by_depth
            .iter()
            .filter_map(move |(d, map)| map.get(suffix_of(stack, *d as usize)))
    }

    /// Whether any signature member matches `stack` at its indexed depth
    /// (the request fast path's relevance probe).
    pub fn matches_any(&self, stack: &[FrameId]) -> bool {
        self.by_depth
            .iter()
            .any(|(d, map)| map.contains_key(suffix_of(stack, *d as usize)))
    }

    /// Number of distinct `(depth, suffix)` keys — the generation's bucket
    /// count (used for adaptive table/occupancy sizing).
    pub fn key_count(&self) -> usize {
        self.layout.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;
    use crate::signature::CycleKind;
    use crate::stack::StackId;

    struct Env {
        frames: FrameTable,
        stacks: StackTable,
        history: History,
    }

    impl Env {
        fn new() -> Self {
            Self {
                frames: FrameTable::new(),
                stacks: StackTable::new(),
                history: History::new(),
            }
        }

        fn stack(&self, lines: &[u32]) -> StackId {
            let f: Vec<_> = lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect();
            self.stacks.intern(&f)
        }

        fn frames_of(&self, lines: &[u32]) -> Vec<FrameId> {
            lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect()
        }
    }

    #[test]
    fn finds_members_matching_at_depth() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        let sig = env
            .history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);

        // A fresh stack sharing s1's depth-2 suffix [5, 6].
        let probe = env.frames_of(&[9, 9, 5, 6]);
        let hits: Vec<_> = idx.candidates(&probe).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].sig.id, sig.id);
        assert!(idx.matches_any(&probe));
        // The matched member is the one holding the [_, 5, 6] stack.
        let member_stack = env.stacks.resolve(sig.stacks[hits[0].member]);
        assert_eq!(suffix_of(&member_stack, 2), &env.frames_of(&[5, 6])[..]);

        // A stack with no matching suffix yields nothing.
        let miss = env.frames_of(&[5, 9]);
        assert_eq!(idx.candidates(&miss).count(), 0);
        assert!(!idx.matches_any(&miss));
    }

    #[test]
    fn cover_keys_align_with_members() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        env.history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        let probe = env.frames_of(&[9, 9, 5, 6]);
        let c = idx.candidates(&probe).next().unwrap();
        let (member, keys) = (c.member, &c.keys);
        assert_eq!(keys.depth, 2);
        assert_eq!(keys.members.len(), 2);
        assert_eq!(keys.members[0].stack, s1);
        assert_eq!(keys.members[1].stack, s2);
        assert_eq!(&*keys.members[member].suffix, &env.frames_of(&[5, 6])[..]);
        let layout = idx.layout();
        for key in &keys.members {
            assert_eq!(key.slot, layout.slot_of(2, &key.suffix));
            assert!(key.slot.is_some());
        }
    }

    #[test]
    fn layout_assigns_dense_deduplicated_slots() {
        let env = Env::new();
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        let s3 = env.stack(&[9, 5, 6]); // depth-2 suffix [5, 6] — same key as s1
        env.history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        env.history
            .add(CycleKind::Deadlock, vec![s3, s2], 2)
            .unwrap();
        let layout = BucketLayout::build(&env.history, &env.stacks);
        // Keys: [5,6] and [5,7] at depth 2 — s3's suffix collapses into
        // s1's slot.
        assert_eq!(layout.len(), 2);
        let k56 = layout.slot_of(2, &env.frames_of(&[5, 6])).unwrap();
        let k57 = layout.slot_of(2, &env.frames_of(&[5, 7])).unwrap();
        assert_ne!(k56, k57);
        assert!((k56 as usize) < layout.len() && (k57 as usize) < layout.len());
        assert_eq!(layout.slot_of(2, &env.frames_of(&[5, 9])), None);
        assert_eq!(layout.slot_of(3, &env.frames_of(&[5, 6])), None);
        assert_eq!(layout.depths().collect::<Vec<_>>(), vec![2]);
        assert!(layout.is_relevant(&env.frames_of(&[8, 8, 5, 6])));
        assert!(!layout.is_relevant(&env.frames_of(&[8, 8, 6, 5])));
    }

    #[test]
    fn disabled_signatures_are_invisible() {
        let env = Env::new();
        let s = env.stack(&[1, 2]);
        let sig = env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        sig.set_disabled(true);
        env.history.touch();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(idx.candidates(&env.frames_of(&[1, 2])).count(), 0);
    }

    #[test]
    fn staleness_tracks_generation() {
        let env = Env::new();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert!(!idx.is_stale(&env.history));
        env.history
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4);
        assert!(idx.is_stale(&env.history));
    }

    #[test]
    fn mixed_depths_are_all_queried() {
        let env = Env::new();
        let shallow = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 6]), env.stack(&[2, 6])],
                1,
            )
            .unwrap();
        let deep = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 2, 3, 6]), env.stack(&[4, 5, 6, 6])],
                4,
            )
            .unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(idx.depths().collect::<Vec<_>>(), vec![1, 4]);

        // Anything ending in 6 matches `shallow` at depth 1; only the exact
        // 4-suffix matches `deep`.
        let probe = env.frames_of(&[9, 1, 2, 3, 6]);
        let mut sig_ids: Vec<_> = idx.candidates(&probe).map(|c| c.sig.id).collect();
        sig_ids.sort_unstable();
        sig_ids.dedup();
        assert!(sig_ids.contains(&shallow.id));
        assert!(sig_ids.contains(&deep.id));

        let probe2 = env.frames_of(&[9, 9, 9, 6]);
        let ids2: Vec<_> = idx.candidates(&probe2).map(|c| c.sig.id).collect();
        assert!(ids2.contains(&shallow.id));
        assert!(!ids2.contains(&deep.id));
    }

    #[test]
    fn extended_layout_and_index_match_full_build() {
        let env = Env::new();
        // Base: two signatures at depths 2 and 1.
        let s1 = env.stack(&[1, 5, 6]);
        let s2 = env.stack(&[2, 5, 7]);
        env.history
            .add(CycleKind::Deadlock, vec![s1, s2], 2)
            .unwrap();
        env.history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[3, 8]), env.stack(&[4, 9])],
                1,
            )
            .unwrap();
        let base_layout = BucketLayout::build(&env.history, &env.stacks);
        let base_index = MatchIndex::build(&env.history, &env.stacks);

        // Appends: one sharing suffix [5, 6] with the base, one at a brand
        // new depth, one disabled (must stay invisible).
        let n1 = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[9, 5, 6]), env.stack(&[9, 5, 8])],
                2,
            )
            .unwrap();
        let n2 = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[1, 2, 3]), env.stack(&[4, 5, 6])],
                3,
            )
            .unwrap();
        let n3 = env
            .history
            .add(
                CycleKind::Deadlock,
                vec![env.stack(&[7, 7]), env.stack(&[8, 8])],
                2,
            )
            .unwrap();
        n3.set_disabled(true);
        let new_sigs = vec![n1, n2, n3];

        let ext_layout = Arc::new(BucketLayout::extended(&base_layout, &new_sigs, &env.stacks));
        let full_layout = BucketLayout::build(&env.history, &env.stacks);
        assert_eq!(ext_layout.len(), full_layout.len());
        assert_eq!(
            ext_layout.depths().collect::<Vec<_>>(),
            full_layout.depths().collect::<Vec<_>>()
        );
        for (d, map) in &full_layout.by_depth {
            for (suffix, slot) in map.iter() {
                assert_eq!(ext_layout.slot_of(*d, suffix), Some(*slot));
            }
        }
        // Every pre-existing slot survived verbatim (append stability).
        for (d, map) in &base_layout.by_depth {
            for (suffix, slot) in map.iter() {
                assert_eq!(ext_layout.slot_of(*d, suffix), Some(*slot));
            }
        }

        let gen = env.history.generation();
        let ext = MatchIndex::extended(
            &base_index,
            gen,
            Arc::clone(&ext_layout),
            &new_sigs,
            &env.stacks,
        );
        let full = MatchIndex::build(&env.history, &env.stacks);
        assert_eq!(ext.generation(), full.generation());
        for (d, map) in &full.by_depth {
            let ext_map = ext
                .by_depth
                .iter()
                .find(|(ed, _)| ed == d)
                .map(|(_, m)| m)
                .expect("depth layer present in extension");
            assert_eq!(map.len(), ext_map.len());
            for (suffix, set) in map.iter() {
                let eset = ext_map.get(suffix).expect("suffix present in extension");
                assert_eq!(set.self_slot(), eset.self_slot());
                assert_eq!(set.self_paired(), eset.self_paired());
                assert_eq!(set.has_lone_member(), eset.has_lone_member());
                assert_eq!(set.all_other_slots(), eset.all_other_slots());
                assert_eq!(set.candidates().len(), eset.candidates().len());
                for (c, e) in set.candidates().iter().zip(eset.candidates()) {
                    assert_eq!(c.sig.id, e.sig.id);
                    assert_eq!(c.member, e.member);
                    let cs: Vec<_> = c.keys.members.iter().map(|m| m.slot).collect();
                    let es: Vec<_> = e.keys.members.iter().map(|m| m.slot).collect();
                    assert_eq!(cs, es);
                }
            }
        }
        // The untouched depth-1 layer is shared, not cloned.
        let base_d1 = base_index
            .by_depth
            .iter()
            .find(|(d, _)| *d == 1)
            .map(|(_, m)| m)
            .unwrap();
        let ext_d1 = ext
            .by_depth
            .iter()
            .find(|(d, _)| *d == 1)
            .map(|(_, m)| m)
            .unwrap();
        assert!(Arc::ptr_eq(base_d1, ext_d1), "depth-1 layer must be shared");
    }

    #[test]
    fn same_stack_twice_in_one_signature_yields_two_members() {
        let env = Env::new();
        let s = env.stack(&[3, 4]);
        env.history.add(CycleKind::Deadlock, vec![s, s], 2).unwrap();
        let idx = MatchIndex::build(&env.history, &env.stacks);
        let probe = env.frames_of(&[3, 4]);
        assert_eq!(idx.candidates(&probe).count(), 2);
    }
}
