//! The persistent deadlock history.
//!
//! The history is the program's acquired immune memory: every signature ever
//! observed, persisted across restarts (§5.4). It is loaded at startup,
//! shared read-only with all application threads, and mutated only by the
//! monitor thread. Duplicate signatures are disallowed, so the history
//! cannot grow beyond the (finite) set of distinct stack multisets (§5.3).
//!
//! # On-disk format
//!
//! A line-oriented text format, ~200–1000 bytes per signature as in the
//! paper (§7.4):
//!
//! ```text
//! # dimmunix-history v2
//! signature kind=deadlock provenance=predicted depth=4 disabled=0 avoided=12 aborts=0
//! stack 2
//! frame main|src/main.rs|10
//! frame update|src/main.rs|3
//! stack 2
//! frame main|src/main.rs|11
//! frame update|src/main.rs|3
//! end
//! ```
//!
//! `|` and `\` inside function/file names are backslash-escaped. The format
//! is deliberately diff-able and hand-editable: the paper's §8 envisions
//! vendors shipping signature files to users as "vaccines", and users
//! deleting or disabling individual signatures.
//!
//! Format v2 adds the per-signature `provenance` attribute
//! (`detected` / `starved` / `predicted`) so vaccines synthesized by the
//! deadlock predictor stay distinguishable from suffered cycles. v1 files
//! load unchanged: a signature without the attribute defaults to the
//! provenance implied by its kind ([`Provenance::default_for`]). Files are
//! always saved as v2.

use crate::frame::FrameTable;
use crate::signature::{CycleKind, Provenance, SigId, Signature};
use crate::stack::{StackId, StackTable};
use parking_lot::{Mutex, RwLock};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic first line of a history file (current version, always written).
const HEADER: &str = "# dimmunix-history v2";
/// The pre-provenance format's header, still accepted on load.
const HEADER_V1: &str = "# dimmunix-history v1";

/// Errors produced while loading or saving a history file.
#[derive(Debug)]
pub enum HistoryError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed file content.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "history I/O error: {e}"),
            HistoryError::Parse { line, msg } => {
                write!(f, "history parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<io::Error> for HistoryError {
    fn from(e: io::Error) -> Self {
        HistoryError::Io(e)
    }
}

/// Report of a salvage load ([`History::salvage_file`]) over a torn or
/// corrupt history file: what was recovered from the valid prefix and what
/// the damaged tail lost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryRecovery {
    /// Complete signatures recovered (and merged) from the valid prefix.
    pub recovered: usize,
    /// Signature blocks lost to the damaged tail: the block open at the
    /// failure point plus every `signature` line after it.
    pub dropped: usize,
    /// 1-based line where parsing stopped; `None` if the whole file parsed.
    pub first_bad_line: Option<usize>,
    /// The parse failure that truncated the load, if any.
    pub error: Option<String>,
    /// Whether the `crc` footer matched; `None` when the file has none
    /// (pre-footer files are still accepted).
    pub crc_ok: Option<bool>,
}

/// What happened to the history between two generations, as reported by
/// [`History::delta_since`].
#[derive(Clone, Debug)]
pub enum HistoryDelta {
    /// Every bump in the span was a pure append; the listed signatures (in
    /// append order, possibly empty) are the only difference. The caller may
    /// patch incrementally: nothing already published was removed, and no
    /// existing signature's matching depth changed.
    Appended(Vec<Arc<Signature>>),
    /// The span contains a removal, a depth change ([`History::touch`]), or
    /// reaches past the journal's retention window: only a full rebuild can
    /// reconstruct the difference.
    Structural,
}

/// One journaled generation bump.
enum JournalEntry {
    /// The bump appended exactly these signatures.
    Appended(Vec<Arc<Signature>>),
    /// The bump changed something other than the list tail.
    Structural,
}

/// Bumps retained by the delta journal before old spans degrade to
/// [`HistoryDelta::Structural`]. Rebuilds normally trail the head by one or
/// two generations, so a short window suffices; the cap bounds memory when
/// nobody consumes deltas (e.g. no runtime attached to a `History`).
const JOURNAL_CAP: usize = 256;

/// The persistent, duplicate-free collection of signatures.
///
/// Reads are lock-free for practical purposes: [`History::snapshot`] returns
/// an `Arc` to an immutable signature list that the avoidance hot path can
/// cache and iterate without touching the `RwLock` again until the
/// generation counter moves.
pub struct History {
    /// Copy-on-write signature list: replaced wholesale on every mutation.
    sigs: RwLock<Arc<Vec<Arc<Signature>>>>,
    /// Bumped on every change that invalidates cached snapshots/indexes
    /// (membership changes *and* matching-depth changes).
    generation: AtomicU64,
    /// Monotonic id source for new signatures.
    next_id: AtomicU64,
    /// Where [`History::save`] writes; set by [`History::open`].
    path: Mutex<Option<PathBuf>>,
    /// Per-bump delta journal consumed by [`History::delta_since`]. The
    /// lock also serializes generation bumps, so journal entries are
    /// contiguous in generation and a reader that observed generation `g`
    /// (`SeqCst`) is guaranteed to find `g`'s entry journaled.
    journal: Mutex<VecDeque<(u64, JournalEntry)>>,
}

impl History {
    /// Creates an empty, unbacked history.
    pub fn new() -> Self {
        Self {
            sigs: RwLock::new(Arc::new(Vec::new())),
            generation: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            path: Mutex::new(None),
            journal: Mutex::new(VecDeque::new()),
        }
    }

    /// Opens the history backed by `path`: loads it if the file exists,
    /// otherwise starts empty. Subsequent [`History::save`] calls write back
    /// to the same file.
    pub fn open(
        path: impl Into<PathBuf>,
        frames: &FrameTable,
        stacks: &StackTable,
    ) -> Result<Self, HistoryError> {
        let path = path.into();
        let h = Self::new();
        if path.exists() {
            h.merge_file(&path, frames, stacks)?;
        }
        *h.path.lock() = Some(path);
        Ok(h)
    }

    /// The file this history saves to, if any.
    pub fn path(&self) -> Option<PathBuf> {
        self.path.lock().clone()
    }

    /// Sets (or clears) the backing file without reading it.
    pub fn set_path(&self, path: Option<PathBuf>) {
        *self.path.lock() = path;
    }

    /// Adds a signature for the given stack multiset unless an identical one
    /// already exists ("duplicate signatures are disallowed", §5.3). The
    /// provenance defaults to the one implied by `kind` (a suffered cycle).
    ///
    /// Returns the new signature, or `None` if it was a duplicate.
    pub fn add(
        &self,
        kind: CycleKind,
        stack_ids: Vec<StackId>,
        depth: u8,
    ) -> Option<Arc<Signature>> {
        self.add_with_provenance(kind, stack_ids, depth, Provenance::default_for(kind))
    }

    /// [`History::add`] with an explicit provenance tag — the predictor's
    /// archival path. Deduplication ignores provenance: a pattern already
    /// suffered (or already predicted) is not re-added.
    pub fn add_with_provenance(
        &self,
        kind: CycleKind,
        mut stack_ids: Vec<StackId>,
        depth: u8,
        provenance: Provenance,
    ) -> Option<Arc<Signature>> {
        stack_ids.sort_unstable();
        let mut guard = self.sigs.write();
        if guard.iter().any(|s| s.same_stacks(&stack_ids)) {
            return None;
        }
        let id = SigId(
            u32::try_from(self.next_id.fetch_add(1, Ordering::Relaxed))
                .expect("more than u32::MAX signatures"),
        );
        let sig = Arc::new(Signature::with_provenance(
            id, kind, stack_ids, depth, provenance,
        ));
        let mut new_list = Vec::with_capacity(guard.len() + 1);
        new_list.extend(guard.iter().cloned());
        new_list.push(Arc::clone(&sig));
        *guard = Arc::new(new_list);
        drop(guard);
        self.bump(JournalEntry::Appended(vec![Arc::clone(&sig)]));
        Some(sig)
    }

    /// Adds a whole batch of signatures under **one** generation bump.
    ///
    /// Each `(kind, stacks, depth, provenance)` item is deduplicated against
    /// the history *and* the earlier items of the same batch; `on_added` runs
    /// for every accepted signature *before* it becomes visible to snapshot
    /// readers, so callers can finalize it (e.g. set a calibration start
    /// depth) without a second invalidating [`History::touch`]. Returns the
    /// accepted signatures in batch order.
    ///
    /// This is the monitor's coalescing path: one monitor pass that detects
    /// or predicts N cycles used to cost N (or 2N, with calibration)
    /// generation bumps — N separate rebuilds downstream. Batched, it costs
    /// exactly one bump and one (delta) rebuild.
    pub fn add_batch_with_provenance(
        &self,
        batch: Vec<(CycleKind, Vec<StackId>, u8, Provenance)>,
        mut on_added: impl FnMut(&Arc<Signature>),
    ) -> Vec<Arc<Signature>> {
        let mut guard = self.sigs.write();
        let mut added: Vec<Arc<Signature>> = Vec::new();
        for (kind, mut stack_ids, depth, provenance) in batch {
            stack_ids.sort_unstable();
            if guard.iter().any(|s| s.same_stacks(&stack_ids))
                || added.iter().any(|s| s.same_stacks(&stack_ids))
            {
                continue;
            }
            let id = SigId(
                u32::try_from(self.next_id.fetch_add(1, Ordering::Relaxed))
                    .expect("more than u32::MAX signatures"),
            );
            let sig = Arc::new(Signature::with_provenance(
                id, kind, stack_ids, depth, provenance,
            ));
            on_added(&sig);
            added.push(sig);
        }
        if added.is_empty() {
            return added;
        }
        let mut new_list = Vec::with_capacity(guard.len() + added.len());
        new_list.extend(guard.iter().cloned());
        new_list.extend(added.iter().cloned());
        *guard = Arc::new(new_list);
        drop(guard);
        self.bump(JournalEntry::Appended(added.clone()));
        added
    }

    /// Removes a signature (e.g. one recalibration found 100% obsolete, §8).
    /// Returns whether it was present.
    pub fn remove(&self, id: SigId) -> bool {
        let mut guard = self.sigs.write();
        if !guard.iter().any(|s| s.id == id) {
            return false;
        }
        let new_list: Vec<_> = guard.iter().filter(|s| s.id != id).cloned().collect();
        *guard = Arc::new(new_list);
        drop(guard);
        self.bump(JournalEntry::Structural);
        true
    }

    /// Returns the signature whose stack multiset equals `stack_ids`.
    pub fn find_by_stacks(&self, stack_ids: &[StackId]) -> Option<Arc<Signature>> {
        let mut sorted = stack_ids.to_vec();
        sorted.sort_unstable();
        self.sigs
            .read()
            .iter()
            .find(|s| s.same_stacks(&sorted))
            .cloned()
    }

    /// Returns the signature with the given id.
    pub fn get(&self, id: SigId) -> Option<Arc<Signature>> {
        self.sigs.read().iter().find(|s| s.id == id).cloned()
    }

    /// Cheap immutable snapshot of the current signature list.
    pub fn snapshot(&self) -> Arc<Vec<Arc<Signature>>> {
        Arc::clone(&self.sigs.read())
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.sigs.read().len()
    }

    /// Whether the history holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic counter bumped on every change that could invalidate cached
    /// snapshots or match indexes.
    ///
    /// `SeqCst` on both sides: the avoidance engine's lock-free yield
    /// protocol re-checks the generation *after* publishing a wake
    /// registration, and its rebuild-boundary argument needs the bump, the
    /// registration push and the release-side drain to sit in one total
    /// order (see the engine's module docs).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Explicitly invalidates caches (call after changing a signature's
    /// matching depth, which lives outside the list structure). Journaled as
    /// structural: consumers must fully rebuild.
    pub fn touch(&self) {
        self.bump(JournalEntry::Structural);
    }

    /// Classifies the span `(from, current]` of generation bumps for an
    /// incremental consumer whose cached state was built at generation
    /// `from`. `from` values at or ahead of the current generation report an
    /// empty append (nothing to do) — except values *beyond* it (e.g. a
    /// sentinel view's `u64::MAX`), which are structural since the journal
    /// can say nothing about them.
    pub fn delta_since(&self, from: u64) -> HistoryDelta {
        let current = self.generation();
        if from == current {
            return HistoryDelta::Appended(Vec::new());
        }
        if from > current {
            return HistoryDelta::Structural;
        }
        let journal = self.journal.lock();
        let mut sigs = Vec::new();
        let mut expected = from + 1;
        for (gen, entry) in journal.iter() {
            if *gen <= from {
                continue;
            }
            if *gen > current {
                break;
            }
            if *gen != expected {
                return HistoryDelta::Structural;
            }
            expected += 1;
            match entry {
                JournalEntry::Appended(s) => sigs.extend(s.iter().cloned()),
                JournalEntry::Structural => return HistoryDelta::Structural,
            }
        }
        // A gap at either end means the journal no longer covers the span
        // (entries pruned past `JOURNAL_CAP`).
        if expected != current + 1 {
            return HistoryDelta::Structural;
        }
        HistoryDelta::Appended(sigs)
    }

    fn bump(&self, entry: JournalEntry) {
        // The journal lock serializes bumps: each generation value gets
        // exactly one contiguous journal entry, and the entry is visible to
        // anyone who observed the bumped generation (their lock acquisition
        // in `delta_since` synchronizes with this critical section).
        let mut journal = self.journal.lock();
        let gen = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        journal.push_back((gen, entry));
        while journal.len() > JOURNAL_CAP {
            journal.pop_front();
        }
    }

    /// Serializes the history to its backing file.
    ///
    /// # Errors
    ///
    /// Fails if no backing path was configured or on I/O error.
    pub fn save(&self, frames: &FrameTable, stacks: &StackTable) -> Result<(), HistoryError> {
        let path = self.path().ok_or_else(|| {
            HistoryError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                "history has no backing file",
            ))
        })?;
        self.save_to(&path, frames, stacks)
    }

    /// Serializes the history to an arbitrary path.
    ///
    /// Crash-safe: the payload ends with a `crc <hex>` footer (CRC-32 over
    /// everything before it), is written to a uniquely named temp file in
    /// the destination directory — process id plus a global counter, so
    /// concurrent saves of sibling files never collide on one temp name —
    /// fsynced, renamed over the destination, and the parent directory is
    /// fsynced so the rename itself survives a crash. A torn write can
    /// therefore only ever leave the *old* complete file, or a new file
    /// whose damage the CRC footer exposes at load time (and which
    /// [`History::salvage_file`] can recover a prefix of).
    pub fn save_to(
        &self,
        path: &Path,
        frames: &FrameTable,
        stacks: &StackTable,
    ) -> Result<(), HistoryError> {
        let mut buf: Vec<u8> = Vec::new();
        writeln!(buf, "{HEADER}")?;
        for sig in self.snapshot().iter() {
            writeln!(
                buf,
                "signature kind={} provenance={} depth={} disabled={} avoided={} aborts={}",
                sig.kind,
                sig.provenance,
                sig.depth(),
                u8::from(sig.is_disabled()),
                sig.avoided(),
                sig.aborts(),
            )?;
            for &stack_id in sig.stacks.iter() {
                let stack = stacks.resolve(stack_id);
                writeln!(buf, "stack {}", stack.len())?;
                for &fid in stack.iter() {
                    let f = frames.resolve(fid);
                    writeln!(
                        buf,
                        "frame {}|{}|{}",
                        escape(&f.function),
                        escape(&f.file),
                        f.line
                    )?;
                }
            }
            writeln!(buf, "end")?;
        }
        let crc = crate::crc::crc32(&buf);
        writeln!(buf, "crc {crc:08x}")?;

        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let stem = path
            .file_name()
            .and_then(|f| f.to_str())
            .unwrap_or("history");
        let tmp = path.with_file_name(format!(
            "{stem}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_all()?;
        }
        #[cfg(feature = "fault-inject")]
        let fault = dimmunix_inject::take_history_fault();
        #[cfg(feature = "fault-inject")]
        if matches!(
            fault,
            Some(dimmunix_inject::HistoryFault::CrashBeforeRename)
        ) {
            // Simulated crash between temp write and rename: the temp file
            // is left behind and the destination is never updated — the
            // exact on-disk state a real crash at this point leaves.
            return Ok(());
        }
        std::fs::rename(&tmp, path)?;
        // The rename is only durable once the directory entry is. Failing
        // to open the directory (some platforms/filesystems) loses only
        // durability of the rename, never atomicity, so it is not an error.
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        #[cfg(feature = "fault-inject")]
        apply_history_fault(path, fault)?;
        Ok(())
    }

    /// Merges the signatures found in `path` into this history, re-interning
    /// frames and stacks. Duplicates are skipped. Returns how many new
    /// signatures were added.
    ///
    /// This implements both startup loading and §8's live "vaccination":
    /// inserting a vendor-shipped signature into a running program's history
    /// without restarting it.
    pub fn merge_file(
        &self,
        path: &Path,
        frames: &FrameTable,
        stacks: &StackTable,
    ) -> Result<usize, HistoryError> {
        let data = std::fs::read(path)?;
        let recovery = self.parse_slice(&data, frames, stacks, false)?;
        Ok(recovery.recovered)
    }

    /// Best-effort load of a torn or corrupt history file: merges every
    /// complete signature before the first malformed line and reports what
    /// was recovered and what the damaged tail lost. Only I/O failures
    /// error; any parse damage is absorbed into the report.
    pub fn salvage_file(
        &self,
        path: &Path,
        frames: &FrameTable,
        stacks: &StackTable,
    ) -> Result<HistoryRecovery, HistoryError> {
        let data = std::fs::read(path)?;
        self.parse_slice(&data, frames, stacks, true)
    }

    /// [`History::open`], falling back to [`History::salvage_file`] when
    /// the file is torn or corrupt: the valid prefix is recovered, the
    /// history stays backed by `path` (the next save rewrites it whole),
    /// and the recovery report is returned alongside.
    pub fn open_salvaging(
        path: impl Into<PathBuf>,
        frames: &FrameTable,
        stacks: &StackTable,
    ) -> Result<(Self, Option<HistoryRecovery>), HistoryError> {
        let path = path.into();
        match Self::open(&path, frames, stacks) {
            Ok(h) => Ok((h, None)),
            Err(HistoryError::Parse { .. }) => {
                let h = Self::new();
                let recovery = h.salvage_file(&path, frames, stacks)?;
                *h.path.lock() = Some(path);
                Ok((h, Some(recovery)))
            }
            Err(e) => Err(e),
        }
    }

    /// The shared strict/salvage parser behind [`History::merge_file`] and
    /// [`History::salvage_file`]. Strict mode (`salvage == false`) returns
    /// a line-numbered [`HistoryError::Parse`] at the first malformed line;
    /// salvage mode stops there instead, keeps everything already merged,
    /// and records the failure plus the number of signature blocks the
    /// damaged tail loses.
    fn parse_slice(
        &self,
        data: &[u8],
        frames: &FrameTable,
        stacks: &StackTable,
        salvage: bool,
    ) -> Result<HistoryRecovery, HistoryError> {
        // Raw byte lines with their offsets: the `crc` footer covers every
        // byte before its own line, so offsets must refer to the original
        // data, not any lossy re-encoding.
        let mut lines: Vec<(usize, &[u8])> = Vec::new();
        let mut off = 0;
        for chunk in data.split(|&b| b == b'\n') {
            lines.push((off, chunk));
            off += chunk.len() + 1;
        }

        #[derive(Default)]
        struct Pending {
            kind: Option<CycleKind>,
            provenance: Option<Provenance>,
            depth: u8,
            disabled: bool,
            avoided: u64,
            aborts: u64,
            stacks: Vec<StackId>,
            /// Frames of the stack currently being read + expected count.
            frames: Vec<crate::frame::FrameId>,
            expect: usize,
        }

        let mut out = HistoryRecovery::default();
        let mut pending: Option<Pending> = None;
        let mut failure: Option<(usize, String)> = None;
        let mut after_footer = false;

        'parse: {
            if data.is_empty() {
                failure = Some((1, "empty history file".into()));
                break 'parse;
            }
            match std::str::from_utf8(lines[0].1) {
                Ok(first) if first.trim() == HEADER || first.trim() == HEADER_V1 => {}
                Ok(first) => {
                    failure = Some((1, format!("bad header {first:?}")));
                    break 'parse;
                }
                Err(_) => {
                    failure = Some((1, "invalid UTF-8".into()));
                    break 'parse;
                }
            }

            for (i, &(offset, raw)) in lines.iter().enumerate().skip(1) {
                let lineno = i + 1;
                let step = (|| -> Result<(), String> {
                    let line = std::str::from_utf8(raw)
                        .map_err(|_| "invalid UTF-8".to_string())?
                        .trim();
                    if line.is_empty() || line.starts_with('#') {
                        return Ok(());
                    }
                    if after_footer {
                        return Err("content after crc footer".into());
                    }
                    if let Some(rest) = line.strip_prefix("crc ") {
                        if pending.is_some() {
                            return Err("crc footer inside signature".into());
                        }
                        let stored = u32::from_str_radix(rest.trim(), 16)
                            .map_err(|_| format!("bad crc footer {rest:?}"))?;
                        let computed = crate::crc::crc32(&data[..offset]);
                        after_footer = true;
                        out.crc_ok = Some(stored == computed);
                        if stored != computed {
                            return Err(format!(
                                "crc mismatch: footer {stored:08x}, computed {computed:08x}"
                            ));
                        }
                        return Ok(());
                    }
                    if let Some(rest) = line.strip_prefix("signature ") {
                        if pending.is_some() {
                            return Err("nested signature".into());
                        }
                        let mut p = Pending {
                            depth: 4,
                            ..Default::default()
                        };
                        for kv in rest.split_whitespace() {
                            let (k, v) = kv
                                .split_once('=')
                                .ok_or_else(|| format!("bad attribute {kv:?}"))?;
                            match k {
                                "kind" => {
                                    p.kind = Some(match v {
                                        "deadlock" => CycleKind::Deadlock,
                                        "starvation" => CycleKind::Starvation,
                                        _ => return Err(format!("bad kind {v:?}")),
                                    })
                                }
                                "provenance" => {
                                    p.provenance = Some(
                                        Provenance::parse(v)
                                            .ok_or_else(|| format!("bad provenance {v:?}"))?,
                                    )
                                }
                                "depth" => p.depth = parse_num_msg(v)?,
                                "disabled" => p.disabled = parse_num_msg::<u8>(v)? != 0,
                                "avoided" => p.avoided = parse_num_msg(v)?,
                                "aborts" => p.aborts = parse_num_msg(v)?,
                                _ => return Err(format!("unknown attribute {k:?}")),
                            }
                        }
                        pending = Some(p);
                    } else if let Some(rest) = line.strip_prefix("stack ") {
                        let p = pending
                            .as_mut()
                            .ok_or_else(|| "stack outside signature".to_string())?;
                        if p.expect != p.frames.len() {
                            return Err("previous stack incomplete".into());
                        }
                        if !p.frames.is_empty() {
                            p.stacks.push(stacks.intern(&p.frames));
                            p.frames.clear();
                        }
                        p.expect = parse_num_msg(rest)?;
                        if p.expect == 0 {
                            return Err("empty stack".into());
                        }
                    } else if let Some(rest) = line.strip_prefix("frame ") {
                        let p = pending
                            .as_mut()
                            .ok_or_else(|| "frame outside signature".to_string())?;
                        let parts = split_escaped(rest);
                        if parts.len() != 3 {
                            return Err(format!("bad frame {rest:?}"));
                        }
                        let lno: u32 = parse_num_msg(&parts[2])?;
                        p.frames.push(frames.intern(&parts[0], &parts[1], lno));
                        if p.frames.len() > p.expect {
                            return Err("more frames than declared".into());
                        }
                    } else if line == "end" {
                        let mut p = pending
                            .take()
                            .ok_or_else(|| "end outside signature".to_string())?;
                        if p.expect != p.frames.len() {
                            return Err("last stack incomplete".into());
                        }
                        if !p.frames.is_empty() {
                            p.stacks.push(stacks.intern(&p.frames));
                        }
                        let kind = p.kind.ok_or_else(|| "signature missing kind".to_string())?;
                        if p.stacks.is_empty() {
                            return Err("signature with no stacks".into());
                        }
                        // v1 signatures (no provenance attribute) default to
                        // the provenance implied by their kind: v1 histories
                        // only ever held suffered cycles.
                        let provenance = p
                            .provenance
                            .unwrap_or_else(|| Provenance::default_for(kind));
                        if let Some(sig) =
                            self.add_with_provenance(kind, p.stacks, p.depth, provenance)
                        {
                            sig.set_disabled(p.disabled);
                            sig.set_avoided(p.avoided);
                            for _ in 0..p.aborts {
                                sig.record_abort();
                            }
                            out.recovered += 1;
                        }
                    } else {
                        return Err(format!("unrecognized line {line:?}"));
                    }
                    Ok(())
                })();
                if let Err(msg) = step {
                    failure = Some((lineno, msg));
                    break 'parse;
                }
            }
            if pending.is_some() {
                let eof_line = lines
                    .iter()
                    .rposition(|(_, raw)| !raw.is_empty())
                    .map(|i| i + 1)
                    .unwrap_or(1);
                failure = Some((eof_line, "unterminated signature".into()));
            }
        }

        if let Some((lineno, msg)) = failure {
            if !salvage {
                return Err(parse_err(lineno, msg));
            }
            // The open block at the failure point is lost, plus every
            // signature block that starts at or after the failing line —
            // including the failing line itself when the damage hit an
            // opener (e.g. a truncation mid-`signature` line).
            out.dropped = usize::from(pending.is_some());
            for &(_, raw) in lines.get(lineno.saturating_sub(1)..).unwrap_or_default() {
                if String::from_utf8_lossy(raw)
                    .trim_start()
                    .starts_with("signature ")
                {
                    out.dropped += 1;
                }
            }
            out.first_bad_line = Some(lineno);
            out.error = Some(msg);
        }
        Ok(out)
    }

    /// Size of the serialized history in bytes (for the §7.4 report).
    pub fn serialized_bytes(&self, frames: &FrameTable, stacks: &StackTable) -> usize {
        let mut buf = Vec::new();
        buf.extend_from_slice(HEADER.as_bytes());
        for sig in self.snapshot().iter() {
            buf.extend_from_slice(
                b"\nsignature kind=XXXXXXXX provenance=XXXXXXXXX depth=XX disabled=X",
            );
            for &stack_id in sig.stacks.iter() {
                let stack = stacks.resolve(stack_id);
                buf.extend_from_slice(b"\nstack NN");
                for &fid in stack.iter() {
                    let f = frames.resolve(fid);
                    buf.extend_from_slice(b"\nframe ||123456");
                    buf.extend_from_slice(f.function.as_bytes());
                    buf.extend_from_slice(f.file.as_bytes());
                }
            }
            buf.extend_from_slice(b"\nend");
        }
        buf.len()
    }
}

impl Default for History {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("History")
            .field("len", &self.len())
            .field("generation", &self.generation())
            .field("path", &self.path())
            .finish()
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> HistoryError {
    HistoryError::Parse {
        line,
        msg: msg.into(),
    }
}

fn parse_num_msg<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

/// Applies the scripted post-publish damage of a [`dimmunix_inject::HistoryFault`]
/// to the just-renamed file — the torn-file generator for salvage tests.
#[cfg(feature = "fault-inject")]
fn apply_history_fault(
    path: &Path,
    fault: Option<dimmunix_inject::HistoryFault>,
) -> io::Result<()> {
    use dimmunix_inject::HistoryFault;
    match fault {
        None | Some(HistoryFault::CrashBeforeRename) => {}
        Some(HistoryFault::CorruptByte { offset }) => {
            let mut data = std::fs::read(path)?;
            if !data.is_empty() {
                let i = (offset as usize) % data.len();
                data[i] ^= 0xFF;
                std::fs::write(path, data)?;
            }
        }
        Some(HistoryFault::TruncateAt { offset }) => {
            let data = std::fs::read(path)?;
            if !data.is_empty() {
                let i = (offset as usize) % data.len();
                std::fs::write(path, &data[..i])?;
            }
        }
    }
    Ok(())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splits a `frame` payload on unescaped `|`, unescaping each field.
fn split_escaped(s: &str) -> Vec<String> {
    let mut parts = vec![String::new()];
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('n') => parts.last_mut().expect("nonempty").push('\n'),
                Some(e) => parts.last_mut().expect("nonempty").push(e),
                None => {}
            },
            '|' => parts.push(String::new()),
            _ => parts.last_mut().expect("nonempty").push(c),
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameTable;
    use crate::stack::StackTable;

    struct Env {
        frames: FrameTable,
        stacks: StackTable,
    }

    impl Env {
        fn new() -> Self {
            Self {
                frames: FrameTable::new(),
                stacks: StackTable::new(),
            }
        }

        fn stack(&self, lines: &[u32]) -> StackId {
            let f: Vec<_> = lines
                .iter()
                .map(|&l| self.frames.intern("f", "x.rs", l))
                .collect();
            self.stacks.intern(&f)
        }
    }

    #[test]
    fn add_rejects_duplicates() {
        let env = Env::new();
        let h = History::new();
        let a = env.stack(&[1, 2]);
        let b = env.stack(&[3, 4]);
        assert!(h.add(CycleKind::Deadlock, vec![a, b], 4).is_some());
        // Same multiset in different order is still a duplicate.
        assert!(h.add(CycleKind::Deadlock, vec![b, a], 4).is_none());
        assert_eq!(h.len(), 1);
        // A true multiset difference is not a duplicate.
        assert!(h.add(CycleKind::Deadlock, vec![a, a], 4).is_some());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn generation_moves_on_every_mutation() {
        let env = Env::new();
        let h = History::new();
        let g0 = h.generation();
        let sig = h
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4)
            .unwrap();
        let g1 = h.generation();
        assert!(g1 > g0);
        h.touch();
        assert!(h.generation() > g1);
        let g2 = h.generation();
        assert!(h.remove(sig.id));
        assert!(h.generation() > g2);
        assert!(!h.remove(sig.id));
    }

    #[test]
    fn snapshot_is_immutable_view() {
        let env = Env::new();
        let h = History::new();
        h.add(CycleKind::Deadlock, vec![env.stack(&[1])], 4);
        let snap = h.snapshot();
        h.add(CycleKind::Deadlock, vec![env.stack(&[2])], 4);
        assert_eq!(snap.len(), 1);
        assert_eq!(h.snapshot().len(), 2);
    }

    #[test]
    fn save_and_reload_roundtrip() {
        let env = Env::new();
        let dir = std::env::temp_dir().join(format!("dimmunix-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.dlk");

        let h = History::new();
        let s1 = env.stack(&[10, 3]);
        let s2 = env.stack(&[11, 3]);
        let sig = h.add(CycleKind::Deadlock, vec![s1, s2], 4).unwrap();
        sig.record_avoided();
        sig.record_avoided();
        sig.record_abort();
        let starv = h.add(CycleKind::Starvation, vec![s1, s1, s2], 2).unwrap();
        starv.set_disabled(true);
        h.save_to(&path, &env.frames, &env.stacks).unwrap();

        // Reload into a fresh universe (fresh interners).
        let env2 = Env::new();
        let h2 = History::open(&path, &env2.frames, &env2.stacks).unwrap();
        assert_eq!(h2.len(), 2);
        let snap = h2.snapshot();
        let d = snap.iter().find(|s| s.kind == CycleKind::Deadlock).unwrap();
        assert_eq!(d.depth(), 4);
        assert_eq!(d.avoided(), 2);
        assert_eq!(d.aborts(), 1);
        assert_eq!(d.size(), 2);
        let s = snap
            .iter()
            .find(|s| s.kind == CycleKind::Starvation)
            .unwrap();
        assert!(s.is_disabled());
        assert_eq!(s.size(), 3);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_skips_known_signatures() {
        let env = Env::new();
        let dir = std::env::temp_dir().join(format!("dimmunix-hist2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.dlk");

        let h = History::new();
        h.add(
            CycleKind::Deadlock,
            vec![env.stack(&[1, 2]), env.stack(&[2, 1])],
            4,
        );
        h.save_to(&path, &env.frames, &env.stacks).unwrap();

        // Merging the same file back adds nothing.
        assert_eq!(h.merge_file(&path, &env.frames, &env.stacks).unwrap(), 0);
        assert_eq!(h.len(), 1);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_roundtrips_all_three_provenance_tags() {
        let env = Env::new();
        let path = std::env::temp_dir().join(format!("dimmunix-prov-{}.dlk", std::process::id()));

        let h = History::new();
        h.add_with_provenance(
            CycleKind::Deadlock,
            vec![env.stack(&[1, 2]), env.stack(&[2, 1])],
            4,
            Provenance::Detected,
        )
        .unwrap();
        h.add_with_provenance(
            CycleKind::Starvation,
            vec![env.stack(&[3, 4]), env.stack(&[4, 3])],
            2,
            Provenance::Starved,
        )
        .unwrap();
        h.add_with_provenance(
            CycleKind::Deadlock,
            vec![env.stack(&[5, 6]), env.stack(&[6, 5])],
            4,
            Provenance::Predicted,
        )
        .unwrap();
        h.save_to(&path, &env.frames, &env.stacks).unwrap();

        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("# dimmunix-history v2"));
        for tag in ["detected", "starved", "predicted"] {
            assert!(
                written.contains(&format!("provenance={tag}")),
                "missing provenance={tag} in:\n{written}"
            );
        }

        let env2 = Env::new();
        let h2 = History::open(&path, &env2.frames, &env2.stacks).unwrap();
        assert_eq!(h2.len(), 3);
        let snap = h2.snapshot();
        let provs: Vec<Provenance> = snap.iter().map(|s| s.provenance).collect();
        assert!(provs.contains(&Provenance::Detected));
        assert!(provs.contains(&Provenance::Starved));
        assert!(provs.contains(&Provenance::Predicted));
        // The predicted vaccine keeps its kind (it anticipates a deadlock).
        let p = snap
            .iter()
            .find(|s| s.provenance == Provenance::Predicted)
            .unwrap();
        assert_eq!(p.kind, CycleKind::Deadlock);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_loads_with_default_provenance() {
        let env = Env::new();
        let path = std::env::temp_dir().join(format!("dimmunix-v1-{}.dlk", std::process::id()));
        std::fs::write(
            &path,
            "# dimmunix-history v1\n\
             signature kind=deadlock depth=4 disabled=0 avoided=2 aborts=0\n\
             stack 1\nframe a|x.rs|1\nstack 1\nframe b|x.rs|2\nend\n\
             signature kind=starvation depth=2 disabled=0 avoided=0 aborts=0\n\
             stack 1\nframe c|x.rs|3\nstack 1\nframe d|x.rs|4\nend\n",
        )
        .unwrap();
        let h = History::open(&path, &env.frames, &env.stacks).unwrap();
        assert_eq!(h.len(), 2);
        let snap = h.snapshot();
        let d = snap.iter().find(|s| s.kind == CycleKind::Deadlock).unwrap();
        assert_eq!(d.provenance, Provenance::Detected);
        assert_eq!(d.avoided(), 2);
        let s = snap
            .iter()
            .find(|s| s.kind == CycleKind::Starvation)
            .unwrap();
        assert_eq!(s.provenance, Provenance::Starved);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_provenance_reports_its_line() {
        let env = Env::new();
        let path =
            std::env::temp_dir().join(format!("dimmunix-badprov-{}.dlk", std::process::id()));
        // The bad attribute sits on line 3.
        std::fs::write(
            &path,
            "# dimmunix-history v2\n\n\
             signature kind=deadlock provenance=banana depth=4\n\
             stack 1\nframe a|x.rs|1\nend\n",
        )
        .unwrap();
        let h = History::new();
        match h.merge_file(&path, &env.frames, &env.stacks) {
            Err(HistoryError::Parse { line: 3, msg }) => {
                assert!(msg.contains("provenance"), "unexpected message {msg:?}");
            }
            other => panic!("expected provenance parse error at line 3, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_missing_file_starts_empty() {
        let env = Env::new();
        let path = std::env::temp_dir().join("definitely-missing-dimmunix.dlk");
        std::fs::remove_file(&path).ok();
        let h = History::open(&path, &env.frames, &env.stacks).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.path().unwrap(), path);
    }

    #[test]
    fn parse_rejects_garbage() {
        let env = Env::new();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dimmunix-bad-{}.dlk", std::process::id()));
        std::fs::write(&path, "not a history\n").unwrap();
        let h = History::new();
        match h.merge_file(&path, &env.frames, &env.stacks) {
            Err(HistoryError::Parse { line: 1, .. }) => {}
            other => panic!("expected header parse error, got {other:?}"),
        }
        std::fs::write(
            &path,
            "# dimmunix-history v1\nsignature kind=deadlock\nstack 2\nframe a|b|1\nend\n",
        )
        .unwrap();
        assert!(h.merge_file(&path, &env.frames, &env.stacks).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn escaping_roundtrips_weird_names() {
        let env = Env::new();
        let fid = env.frames.intern("op|weird\\name", "dir|x/y.rs", 7);
        let sid = env.stacks.intern(&[fid]);
        let h = History::new();
        h.add(CycleKind::Deadlock, vec![sid], 4);
        let path = std::env::temp_dir().join(format!("dimmunix-esc-{}.dlk", std::process::id()));
        h.save_to(&path, &env.frames, &env.stacks).unwrap();

        let env2 = Env::new();
        let h2 = History::open(&path, &env2.frames, &env2.stacks).unwrap();
        assert_eq!(h2.len(), 1);
        let sig = h2.snapshot()[0].clone();
        let stack = env2.stacks.resolve(sig.stacks[0]);
        let f = env2.frames.resolve(stack[0]);
        assert_eq!(&*f.function, "op|weird\\name");
        assert_eq!(&*f.file, "dir|x/y.rs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_since_reports_pure_appends() {
        let env = Env::new();
        let h = History::new();
        let g0 = h.generation();
        let a = h
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4)
            .unwrap();
        let b = h
            .add(CycleKind::Deadlock, vec![env.stack(&[2])], 4)
            .unwrap();
        match h.delta_since(g0) {
            HistoryDelta::Appended(sigs) => {
                assert_eq!(
                    sigs.iter().map(|s| s.id).collect::<Vec<_>>(),
                    vec![a.id, b.id]
                );
            }
            HistoryDelta::Structural => panic!("append-only span reported structural"),
        }
        // A consumer already at the head has nothing to do.
        assert!(matches!(
            h.delta_since(h.generation()),
            HistoryDelta::Appended(s) if s.is_empty()
        ));
    }

    #[test]
    fn delta_since_degrades_to_structural() {
        let env = Env::new();
        let h = History::new();
        let sig = h
            .add(CycleKind::Deadlock, vec![env.stack(&[1])], 4)
            .unwrap();
        let g = h.generation();
        h.touch();
        assert!(matches!(h.delta_since(g), HistoryDelta::Structural));
        let g = h.generation();
        h.add(CycleKind::Deadlock, vec![env.stack(&[2])], 4)
            .unwrap();
        h.remove(sig.id);
        assert!(matches!(h.delta_since(g), HistoryDelta::Structural));
        // A from-generation ahead of the head (sentinel views) is structural.
        assert!(matches!(h.delta_since(u64::MAX), HistoryDelta::Structural));
        // A span starting before the journal's retention window is too.
        let g = h.generation();
        for i in 0..(JOURNAL_CAP as u32 + 8) {
            h.add(CycleKind::Deadlock, vec![env.stack(&[100 + i])], 4);
        }
        assert!(matches!(h.delta_since(g), HistoryDelta::Structural));
    }

    #[test]
    fn batch_add_costs_one_generation_and_dedups() {
        let env = Env::new();
        let h = History::new();
        let a = env.stack(&[1]);
        let b = env.stack(&[2]);
        h.add(CycleKind::Deadlock, vec![a], 4).unwrap();
        let g = h.generation();
        let mut finalized = 0;
        let added = h.add_batch_with_provenance(
            vec![
                // Duplicate of an existing signature: skipped.
                (CycleKind::Deadlock, vec![a], 4, Provenance::Predicted),
                (CycleKind::Deadlock, vec![b], 4, Provenance::Predicted),
                // Duplicate of an earlier batch item: skipped.
                (CycleKind::Deadlock, vec![b], 4, Provenance::Predicted),
                (CycleKind::Deadlock, vec![a, b], 4, Provenance::Predicted),
            ],
            |sig| {
                // Finalization runs before visibility: depth changes here
                // must not require a second bump.
                sig.set_depth(2);
                finalized += 1;
            },
        );
        assert_eq!(added.len(), 2);
        assert_eq!(finalized, 2);
        assert_eq!(h.generation(), g + 1, "one bump for the whole batch");
        assert_eq!(h.len(), 3);
        assert!(added.iter().all(|s| s.depth() == 2));
        match h.delta_since(g) {
            HistoryDelta::Appended(sigs) => assert_eq!(sigs.len(), 2),
            HistoryDelta::Structural => panic!("batch append reported structural"),
        }
        // An all-duplicate batch is a no-op: no bump at all.
        let g2 = h.generation();
        let none = h.add_batch_with_provenance(
            vec![(CycleKind::Deadlock, vec![b], 4, Provenance::Predicted)],
            |_| {},
        );
        assert!(none.is_empty());
        assert_eq!(h.generation(), g2);
    }

    #[test]
    fn serialized_size_is_within_paper_band() {
        // §7.4: "on the order of 200-1000 bytes per signature".
        let env = Env::new();
        let h = History::new();
        for i in 0..10_u32 {
            let s1 = env.stack(&[i * 2 + 100, 3]);
            let s2 = env.stack(&[i * 2 + 101, 3]);
            h.add(CycleKind::Deadlock, vec![s1, s2], 4);
        }
        let bytes = h.serialized_bytes(&env.frames, &env.stacks);
        let per_sig = bytes / 10;
        assert!(per_sig < 1000, "{per_sig} bytes per signature");
    }
}
