//! Deadlock signatures for Dimmunix (OSDI'08).
//!
//! A *deadlock signature* is the fingerprint Dimmunix saves the first time a
//! deadlock (or avoidance-induced starvation) pattern manifests: the multiset
//! of the call stacks labelling the hold and yield edges of the cycle found
//! in the resource allocation graph (§5.3 of the paper). Signatures contain
//! **no thread or lock identities** — only control-flow information — which
//! makes them portable across executions and distributable to other users of
//! the same binary ("vaccines").
//!
//! This crate provides:
//!
//! * [`frame`] — interned call-site frames (`function`, `file`, `line`), the
//!   execution-independent analog of the return addresses the paper stores;
//! * [`stack`] — interned call stacks and the *suffix matching at depth k*
//!   primitive used everywhere (§5.5);
//! * [`signature`] — the [`Signature`] record with its runtime-mutable
//!   matching depth, avoidance counters and disable flag (§5.7);
//! * [`history`] — the persistent, duplicate-free [`History`] with its
//!   line-oriented on-disk format (200–1000 bytes per signature, §7.4), hot
//!   reload and merge ("patching a program without restarting it", §8);
//! * [`match_index`] — an optional suffix-hash index accelerating the
//!   per-`request` signature search;
//! * [`calibration`] — the matching-depth calibration state machine
//!   (NA = 20 avoidances per depth, recalibration after NT = 10⁴, §5.5).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod crc;
pub mod frame;
pub mod history;
pub mod match_index;
pub mod signature;
pub mod stack;

pub use calibration::{CalibrationConfig, CalibrationState, CalibrationUpdate, Phase};
pub use frame::{Frame, FrameId, FrameTable};
pub use history::{History, HistoryDelta, HistoryError, HistoryRecovery};
pub use match_index::{BucketLayout, Candidate, CandidateSet, CoverKeys, MatchIndex, MemberKey};
pub use signature::{CycleKind, Provenance, SigId, Signature};
pub use stack::{suffix_matches, suffix_of, CallStack, StackId, StackTable};
