//! Error-path coverage for history loading: every malformed input must
//! produce either a precise, line-numbered [`HistoryError::Parse`] (strict
//! loading) or a [`HistoryRecovery`] report with accurate recovered/dropped
//! counts (salvage loading).

use dimmunix_signature::{
    CycleKind, FrameTable, History, HistoryError, HistoryRecovery, StackTable,
};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dimmunix-history-errors");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.dlk", std::process::id()))
}

struct Env {
    frames: FrameTable,
    stacks: StackTable,
}

impl Env {
    fn new() -> Self {
        Self {
            frames: FrameTable::new(),
            stacks: StackTable::new(),
        }
    }
}

/// One complete, distinct v2 signature block (6 lines), parameterized so
/// consecutive blocks don't deduplicate against each other.
fn sig_block(n: u32) -> String {
    format!(
        "signature kind=deadlock depth=4 disabled=0 avoided=0 aborts=0\n\
         stack 1\nframe f{n}|x.rs|{n}\nstack 1\nframe g{n}|x.rs|{}\nend\n",
        n + 100
    )
}

fn open_strict(path: &PathBuf) -> Result<History, HistoryError> {
    let env = Env::new();
    History::open(path, &env.frames, &env.stacks)
}

fn open_salvage(path: &PathBuf) -> (History, Option<HistoryRecovery>) {
    let env = Env::new();
    History::open_salvaging(path, &env.frames, &env.stacks).unwrap()
}

#[test]
fn bad_header_is_line_1_error_and_salvages_to_empty() {
    let path = tmp("bad-header");
    std::fs::write(&path, format!("not a history\n{}", sig_block(1))).unwrap();

    match open_strict(&path) {
        Err(HistoryError::Parse { line: 1, msg }) => {
            assert!(msg.contains("bad header"), "unexpected message {msg:?}")
        }
        other => panic!("expected header error at line 1, got {other:?}"),
    }

    let (h, rec) = open_salvage(&path);
    let rec = rec.expect("damaged file must produce a recovery report");
    assert_eq!(h.len(), 0);
    assert_eq!((rec.recovered, rec.dropped), (0, 1), "{rec:?}");
    assert_eq!(rec.first_bad_line, Some(1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_mid_stack_errors_at_last_line_and_salvages_prefix() {
    let path = tmp("truncated");
    // Three blocks; the third is cut inside its second stack (a declared
    // 2-frame stack with only one frame written, then EOF).
    let content = format!(
        "# dimmunix-history v2\n{}{}signature kind=deadlock depth=4 disabled=0 avoided=0 aborts=0\n\
         stack 2\nframe e|x.rs|5\n",
        sig_block(1),
        sig_block(2)
    );
    std::fs::write(&path, &content).unwrap();
    let last_line = content.lines().count(); // line of `frame e|x.rs|5`

    match open_strict(&path) {
        Err(HistoryError::Parse { line, msg }) => {
            assert_eq!(line, last_line, "error must point at the torn tail");
            assert!(
                msg.contains("unterminated signature"),
                "unexpected message {msg:?}"
            );
        }
        other => panic!("expected truncation error, got {other:?}"),
    }

    let (h, rec) = open_salvage(&path);
    let rec = rec.expect("recovery report");
    assert_eq!(h.len(), 2, "the two complete blocks must survive");
    assert_eq!((rec.recovered, rec.dropped), (2, 1), "{rec:?}");
    assert_eq!(rec.first_bad_line, Some(last_line));
    assert!(rec.crc_ok.is_none(), "no footer was reached: {rec:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn duplicate_signature_line_is_precise_and_salvage_counts_the_tail() {
    let path = tmp("nested");
    // Block 2 opens and then hits another `signature` line before `end`
    // (line 11); block 3 after it is well-formed but unreachable.
    let content = format!(
        "# dimmunix-history v2\n{}\
         signature kind=deadlock depth=4 disabled=0 avoided=0 aborts=0\n\
         stack 1\nframe c|x.rs|3\n\
         signature kind=deadlock depth=4 disabled=0 avoided=0 aborts=0\n\
         stack 1\nframe d|x.rs|4\nend\n{}",
        sig_block(1),
        sig_block(3)
    );
    std::fs::write(&path, &content).unwrap();

    match open_strict(&path) {
        Err(HistoryError::Parse { line: 11, msg }) => {
            assert!(msg.contains("nested signature"), "unexpected {msg:?}")
        }
        other => panic!("expected nested-signature error at line 11, got {other:?}"),
    }

    let (h, rec) = open_salvage(&path);
    let rec = rec.expect("recovery report");
    assert_eq!(h.len(), 1, "only the block before the damage survives");
    // Dropped: the open block the duplicate line interrupted, the block
    // the duplicate line itself opens, and the well-formed block stranded
    // in the unparsed tail — four signature starts appeared, one survived.
    assert_eq!((rec.recovered, rec.dropped), (1, 3), "{rec:?}");
    assert_eq!(rec.first_bad_line, Some(11));
    std::fs::remove_file(&path).ok();
}

#[test]
fn crc_mismatch_is_detected_strictly_and_reported_by_salvage() {
    let path = tmp("crc-mismatch");
    // A genuine save (with CRC footer), then a parse-neutral bit of rot:
    // same-length attribute edit, so only the checksum can notice.
    let env = Env::new();
    let h = History::new();
    for (a, b) in [(1, 2), (3, 4)] {
        let fa = env.frames.intern("f", "x.rs", a);
        let fb = env.frames.intern("f", "x.rs", b);
        let sa = env.stacks.intern(&[fa]);
        let sb = env.stacks.intern(&[fb]);
        h.add(CycleKind::Deadlock, vec![sa, sb], 4).unwrap();
    }
    h.save_to(&path, &env.frames, &env.stacks).unwrap();
    let clean = std::fs::read_to_string(&path).unwrap();
    assert!(clean.lines().last().unwrap().starts_with("crc "));
    let rotten = clean.replacen("avoided=0", "avoided=9", 1);
    assert_eq!(rotten.len(), clean.len());
    std::fs::write(&path, &rotten).unwrap();
    let footer_line = rotten.trim_end().lines().count();

    match open_strict(&path) {
        Err(HistoryError::Parse { line, msg }) => {
            assert_eq!(line, footer_line, "error must point at the footer");
            assert!(msg.contains("crc mismatch"), "unexpected {msg:?}");
        }
        other => panic!("expected crc mismatch, got {other:?}"),
    }

    // Salvage keeps the (individually well-formed) signatures but flags
    // the failed checksum so the caller knows the file cannot be trusted
    // byte-for-byte.
    let (h2, rec) = open_salvage(&path);
    let rec = rec.expect("recovery report");
    assert_eq!(h2.len(), 2);
    assert_eq!((rec.recovered, rec.dropped), (2, 0), "{rec:?}");
    assert_eq!(rec.crc_ok, Some(false), "{rec:?}");
    assert!(rec.error.as_deref().unwrap().contains("crc mismatch"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn clean_file_salvage_reports_crc_ok_and_nothing_dropped() {
    let path = tmp("clean");
    let env = Env::new();
    let h = History::new();
    let fa = env.frames.intern("f", "x.rs", 1);
    let fb = env.frames.intern("f", "x.rs", 2);
    h.add(
        CycleKind::Deadlock,
        vec![env.stacks.intern(&[fa]), env.stacks.intern(&[fb])],
        4,
    )
    .unwrap();
    h.save_to(&path, &env.frames, &env.stacks).unwrap();

    // A clean file never reaches the salvage path through open_salvaging…
    let (h2, rec) = open_salvage(&path);
    assert!(rec.is_none());
    assert_eq!(h2.len(), 1);

    // …but salvage_file can still audit it: full CRC pass, nothing lost.
    let env2 = Env::new();
    let rec = History::new()
        .salvage_file(&path, &env2.frames, &env2.stacks)
        .unwrap();
    assert_eq!((rec.recovered, rec.dropped), (1, 0), "{rec:?}");
    assert_eq!(rec.crc_ok, Some(true), "{rec:?}");
    assert!(rec.error.is_none() && rec.first_bad_line.is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_footerless_file_loads_with_unknown_crc() {
    let path = tmp("legacy");
    std::fs::write(&path, format!("# dimmunix-history v2\n{}", sig_block(1))).unwrap();
    let h = open_strict(&path).expect("footerless v2 file is legal");
    assert_eq!(h.len(), 1);
    let env = Env::new();
    let rec = History::new()
        .salvage_file(&path, &env.frames, &env.stacks)
        .unwrap();
    assert_eq!(rec.crc_ok, None, "no footer, no verdict: {rec:?}");
    assert_eq!((rec.recovered, rec.dropped), (1, 0));
    std::fs::remove_file(&path).ok();
}
