//! Property-based tests for stacks, signatures, history persistence and
//! calibration.

use dimmunix_signature::{
    suffix_matches, suffix_of, CalibrationConfig, CalibrationState, CalibrationUpdate, CycleKind,
    FrameId, FrameTable, History, Phase, StackTable,
};
use proptest::prelude::*;

fn arb_stack() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0_u32..24, 1..12)
}

fn intern(ft: &FrameTable, lines: &[u32]) -> Vec<FrameId> {
    lines.iter().map(|&l| ft.intern("f", "p.rs", l)).collect()
}

proptest! {
    /// Matching is monotone: equality of deeper suffixes implies equality
    /// of shallower ones (§5.5's premise that shallow matching is the more
    /// general pattern).
    #[test]
    fn suffix_matching_is_monotone(a in arb_stack(), b in arb_stack(), d1 in 0_usize..14, d2 in 0_usize..14) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let ft = FrameTable::new();
        let fa = intern(&ft, &a);
        let fb = intern(&ft, &b);
        if suffix_matches(&fa, &fb, hi) {
            prop_assert!(suffix_matches(&fa, &fb, lo),
                "match at depth {hi} must imply match at depth {lo}");
        }
    }

    /// `suffix_of` returns at most `depth` frames and is a true suffix.
    #[test]
    fn suffix_of_is_a_suffix(a in arb_stack(), d in 0_usize..14) {
        let ft = FrameTable::new();
        let fa = intern(&ft, &a);
        let s = suffix_of(&fa, d);
        prop_assert!(s.len() <= d || d == 0 && s.is_empty() || s.len() == fa.len().min(d));
        prop_assert_eq!(s, &fa[fa.len() - s.len()..]);
    }

    /// Stack interning is injective: equal ids ⇔ equal frame sequences.
    #[test]
    fn stack_interning_injective(a in arb_stack(), b in arb_stack()) {
        let ft = FrameTable::new();
        let st = StackTable::new();
        let ia = st.intern(&intern(&ft, &a));
        let ib = st.intern(&intern(&ft, &b));
        prop_assert_eq!(ia == ib, a == b);
    }

    /// Adding the same stack multiset in any order is a duplicate.
    #[test]
    fn history_dedup_is_order_insensitive(stacks in prop::collection::vec(arb_stack(), 2..4), shuffle in any::<u64>()) {
        let ft = FrameTable::new();
        let st = StackTable::new();
        let h = History::new();
        let ids: Vec<_> = stacks.iter().map(|s| st.intern(&intern(&ft, s))).collect();
        prop_assert!(h.add(CycleKind::Deadlock, ids.clone(), 4).is_some());
        let mut shuffled = ids.clone();
        // Cheap deterministic shuffle.
        if shuffled.len() > 1 {
            let k = (shuffle as usize) % shuffled.len();
            shuffled.rotate_left(k);
        }
        prop_assert!(h.add(CycleKind::Deadlock, shuffled, 4).is_none());
        prop_assert_eq!(h.len(), 1);
    }

    /// Save → load roundtrips every signature with its metadata, even with
    /// hostile function/file names.
    #[test]
    fn history_roundtrips_through_disk(
        sigs in prop::collection::vec(
            (prop::collection::vec(arb_stack(), 1..4), any::<bool>(), 1_u8..12, 0_u64..100),
            1..8),
        name_a in "[a-z|\\\\ ]{1,12}",
    ) {
        let ft = FrameTable::new();
        let st = StackTable::new();
        let h = History::new();
        let mut expected = 0;
        for (stacks, disabled, depth, avoided) in &sigs {
            let ids: Vec<_> = stacks
                .iter()
                .map(|s| {
                    let mut frames = intern(&ft, s);
                    // Mix in a hostile frame name to exercise escaping.
                    frames.push(ft.intern(&name_a, "dir|x.rs", 1));
                    st.intern(&frames)
                })
                .collect();
            if let Some(sig) = h.add(CycleKind::Starvation, ids, *depth) {
                sig.set_disabled(*disabled);
                sig.set_avoided(*avoided);
                expected += 1;
            }
        }
        let path = std::env::temp_dir().join(format!(
            "dimmunix-prop-{}-{}.dlk",
            std::process::id(),
            expected
        ));
        h.save_to(&path, &ft, &st).unwrap();
        let ft2 = FrameTable::new();
        let st2 = StackTable::new();
        let h2 = History::open(&path, &ft2, &st2).unwrap();
        prop_assert_eq!(h2.len(), expected);
        // Compare metadata multisets.
        let mut before: Vec<_> = h
            .snapshot()
            .iter()
            .map(|s| (s.size(), s.depth(), s.is_disabled(), s.avoided()))
            .collect();
        let mut after: Vec<_> = h2
            .snapshot()
            .iter()
            .map(|s| (s.size(), s.depth(), s.is_disabled(), s.avoided()))
            .collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        std::fs::remove_file(&path).ok();
    }

    /// Calibration always terminates with a depth in range, no matter how
    /// adversarial the FP verdict stream is.
    #[test]
    fn calibration_terminates_in_range(
        verdicts in prop::collection::vec((any::<bool>(), 0_u8..12), 1..400),
        na in 1_u32..5,
        max_depth in 2_u8..8,
    ) {
        let cfg = CalibrationConfig { na, nt: 1_000, max_depth };
        let mut st = CalibrationState::disabled();
        st.start(&cfg);
        let mut finished_depth = None;
        for (fp, match_bound) in verdicts {
            let d = st.current_depth().clamp(1, max_depth);
            let upd = st.record_outcome(&cfg, d, fp, |q| q <= match_bound);
            match upd {
                CalibrationUpdate::SetDepth(nd) => {
                    prop_assert!((1..=max_depth).contains(&nd));
                }
                CalibrationUpdate::Finished { depth, fp_rate } => {
                    prop_assert!((1..=max_depth).contains(&depth));
                    prop_assert!((0.0..=1.0).contains(&fp_rate));
                    finished_depth = Some(depth);
                    break;
                }
                CalibrationUpdate::None => {}
            }
        }
        if finished_depth.is_some() {
            prop_assert_eq!(st.phase(), Phase::Stable);
        }
    }
}
