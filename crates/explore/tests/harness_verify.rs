//! The full verify pipeline on the canonical scenarios: exhaustive
//! avoidance-off exploration (lockstep + no-lost-wakeup on every
//! schedule), vaccine mining, and exhaustive vaccinated exploration that
//! must complete everywhere.

use dimmunix_explore::{scenarios, verify_scenario, ExploreConfig};

#[test]
fn ab_ba_verified_end_to_end() {
    let rep = verify_scenario(&scenarios::ab_ba(), &ExploreConfig::default());
    assert!(rep.ok(), "violations: {:?}", rep.violations);
    assert!(rep.buggy.complete, "{}", rep.buggy.summary());
    assert_eq!(rep.buggy.deadlocks.len(), 1);
    assert_eq!(rep.vaccine_sigs, 1);
    let imm = rep
        .immune
        .expect("a deadlock was mined, so an immune pass ran");
    assert!(imm.complete, "{}", imm.summary());
    assert_eq!(imm.deadlocked, 0);
    assert_eq!(imm.exhausted, 0);
    assert!(imm.runs >= 1);
    assert_eq!(
        imm.completed, imm.runs,
        "every vaccinated schedule completes"
    );
}

#[test]
fn stacked_abba_verified_end_to_end() {
    let rep = verify_scenario(&scenarios::stacked_abba(), &ExploreConfig::default());
    assert!(rep.ok(), "violations: {:?}", rep.violations);
    assert!(rep.buggy.complete);
    let imm = rep.immune.expect("immune pass");
    assert!(imm.complete);
    assert_eq!(imm.completed, imm.runs);
}

#[test]
fn ring3_verified_end_to_end() {
    let rep = verify_scenario(&scenarios::ring(3), &ExploreConfig::default());
    assert!(rep.ok(), "violations: {:?}", rep.violations);
    assert!(rep.buggy.complete);
    assert_eq!(
        rep.buggy.deadlocks.len(),
        1,
        "the 3-ring has one wait-for cycle"
    );
    let imm = rep.immune.expect("immune pass");
    // The vaccinated space is much larger (yields and wakes add
    // interleavings, and Global dependence disables per-lock pruning) —
    // it must still be exhausted, all-completing.
    assert!(imm.complete, "{}", imm.summary());
    assert_eq!(imm.completed, imm.runs);
    assert!(imm.runs > rep.buggy.runs);
}

#[test]
fn harness_skips_immune_pass_when_nothing_deadlocks() {
    let rep = verify_scenario(&scenarios::same_order(), &ExploreConfig::default());
    assert!(rep.ok(), "violations: {:?}", rep.violations);
    assert_eq!(rep.buggy.deadlocked, 0);
    assert!(rep.immune.is_none());
}
