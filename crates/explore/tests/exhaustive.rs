//! Deterministic exhaustive-exploration regressions: exact interleaving
//! counts for the canonical AB/BA inversion, DPOR-vs-naive differential
//! equivalence, and minimizer behaviour.

use dimmunix_core::Runtime;
use dimmunix_explore::corpus::edges_fingerprint;
use dimmunix_explore::{
    explore, minimize, scenarios, Exploration, ExploreConfig, Pruning, Scenario,
};

fn fresh() -> Runtime {
    Runtime::new(Scenario::small_config()).expect("runtime")
}

fn run(s: &Scenario, pruning: Pruning) -> Exploration {
    let cfg = ExploreConfig {
        pruning,
        max_schedules: 200_000,
        ..ExploreConfig::default()
    };
    explore(s, &cfg, fresh)
}

/// The canonical 2-thread AB/BA inversion has exactly one Mazurkiewicz
/// trace that deadlocks, and DPOR visits it exactly once. The counts are
/// fully deterministic: the driver is a DFS over recorded decision
/// prefixes with no randomness anywhere.
#[test]
fn ab_ba_exact_interleaving_counts() {
    let first = run(&scenarios::ab_ba(), Pruning::Dpor);
    assert!(
        first.complete,
        "space must be exhausted: {}",
        first.summary()
    );
    assert!(first.violations.is_empty(), "{:?}", first.violations);
    // 9 executed schedules: 8 complete, exactly 1 reaches the deadlock
    // state (T1 holds A wanting B, T2 holds B wanting A).
    assert_eq!(first.runs, 9, "{}", first.summary());
    assert_eq!(first.deadlocked, 1, "{}", first.summary());
    assert_eq!(first.completed, 8, "{}", first.summary());
    assert_eq!(first.deadlocks.len(), 1, "one distinct wait-for cycle");
    assert_eq!(first.exhausted, 0);

    // Deterministic: a second exploration reproduces every number and
    // the same witness schedule.
    let second = run(&scenarios::ab_ba(), Pruning::Dpor);
    assert_eq!(second.runs, first.runs);
    assert_eq!(second.pruned, first.pruned);
    assert_eq!(second.decisions, first.decisions);
    assert_eq!(second.outcomes, first.outcomes);
    assert_eq!(
        second.deadlocks[0].schedule, first.deadlocks[0].schedule,
        "witness schedule must be reproducible"
    );
}

/// Naive full enumeration agrees with DPOR on *what* can happen — the
/// distinct outcome set — while exploring far more schedules. Three small
/// scenarios keep the naive side tractable.
#[test]
fn dpor_matches_naive_outcome_sets() {
    for s in [
        scenarios::ab_minimal(),
        scenarios::trylock_mix(),
        scenarios::same_order(),
    ] {
        let dpor = run(&s, Pruning::Dpor);
        let naive = run(&s, Pruning::Naive);
        assert!(dpor.complete, "{}: {}", s.name(), dpor.summary());
        assert!(naive.complete, "{}: {}", s.name(), naive.summary());
        assert_eq!(
            dpor.distinct_outcomes(),
            naive.distinct_outcomes(),
            "{}: DPOR and naive must observe the same outcomes",
            s.name()
        );
        assert!(
            naive.runs > dpor.runs,
            "{}: reduction expected (naive {} vs dpor {})",
            s.name(),
            naive.runs,
            dpor.runs
        );
        assert!(dpor.violations.is_empty(), "{:?}", dpor.violations);
        assert!(naive.violations.is_empty(), "{:?}", naive.violations);
    }
}

/// A preemption bound caps the walk and reports that completeness was
/// given up. The AB/BA deadlock needs exactly one preemption: bound 0
/// cannot see it, bound 1 (over the naive tree, where the bound composes
/// exactly) finds it while exploring far fewer schedules than the full
/// enumeration.
#[test]
fn preemption_bound_is_an_escape_hatch_not_a_lie() {
    let bounded = |b: u32| {
        explore(
            &scenarios::ab_ba(),
            &ExploreConfig {
                pruning: Pruning::Naive,
                preemption_bound: Some(b),
                max_schedules: 200_000,
                ..ExploreConfig::default()
            },
            fresh,
        )
    };
    let zero = bounded(0);
    assert_eq!(zero.deadlocked, 0, "{}", zero.summary());
    assert!(zero.bound_hits > 0, "bound must actually bite");
    assert!(!zero.complete, "a bitten bound forfeits exhaustiveness");

    let one = bounded(1);
    assert!(one.deadlocked >= 1, "{}", one.summary());
    assert!(!one.complete);

    let full = run(&scenarios::ab_ba(), Pruning::Naive);
    assert!(
        zero.runs < one.runs && one.runs < full.runs,
        "bounds must shrink the walk: {} < {} < {}",
        zero.runs,
        one.runs,
        full.runs
    );
}

/// The minimizer collapses a witness that wanders through a redundant
/// lock round down to the 4-decision core of the inversion.
#[test]
fn minimizer_shrinks_detour_witness() {
    let s = scenarios::b_round_detour();
    let ex = run(&s, Pruning::Naive);
    assert!(ex.complete);
    let d = &ex.deadlocks[0];
    let fp = edges_fingerprint(&d.edges);
    // Hand the minimizer a deliberately wasteful witness: T1 completes a
    // full lock/unlock round on B before the inversion bites.
    let long = vec![0, 0, 0, 1, 1, 0];
    let min = minimize(&s, &long, &fp, 20_000, fresh);
    assert_eq!(
        min.len(),
        4,
        "minimal witness is lockA, lockB, block, block: got {min:?}"
    );
    // The minimized schedule still reproduces the same deadlock.
    let fx = dimmunix_explore::Fixture::mined(s, min).expect("minimized witness replays");
    assert_eq!(edges_fingerprint(&fx.edges), fp);
}
