//! The checked-in deadlock corpus gates the engine: every fixture must
//! (a) strictly replay to its recorded deadlock on a fresh runtime, and
//! (b) complete when the runtime is vaccinated with the signature that
//! very deadlock captures. A refactor that breaks either direction —
//! deadlocks that stop reproducing, or vaccines that stop working — fails
//! here before it ships.

use dimmunix_core::Runtime;
use dimmunix_explore::{default_corpus_dir, load_dir, mine_vaccine, ExpectedOutcome, Scenario};

#[test]
fn corpus_fixtures_replay_and_vaccinate() {
    let fixtures = load_dir(&default_corpus_dir()).expect("corpus dir loads");
    assert!(
        fixtures.len() >= 3,
        "expected at least 3 checked-in fixtures, found {}",
        fixtures.len()
    );
    for (path, fx) in fixtures {
        assert_eq!(
            fx.expected,
            ExpectedOutcome::Deadlock,
            "{}: the corpus holds deadlocks",
            path.display()
        );
        assert!(!fx.edges.is_empty(), "{}", path.display());

        // Fresh runtime: the schedule must reproduce the exact deadlock.
        let rt = Runtime::new(Scenario::small_config()).expect("runtime");
        fx.verify_fresh(&rt)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        drop(rt);

        // Mine the vaccine from this very schedule, then the same
        // schedule on a vaccinated runtime must run to completion.
        let vax = std::env::temp_dir().join(format!(
            "corpus-replay-{}-{}.vax",
            std::process::id(),
            path.file_stem().unwrap().to_string_lossy()
        ));
        mine_vaccine(&fx.scenario, &fx.schedule, 100_000, &vax)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rt = Runtime::new(Scenario::small_config()).expect("runtime");
        let sigs = rt.vaccinate(&vax).expect("vaccinate");
        assert!(sigs >= 1, "{}", path.display());
        fx.verify_immunized(&rt)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let _ = std::fs::remove_file(&vax);
    }
}
