//! The DPOR driver: a depth-first walk of the schedule tree with sleep
//! sets, invisible-transition (local-singleton) persistent sets and an
//! optional preemption bound.
//!
//! Each iteration re-executes the scenario from a fresh runtime, replaying
//! the recorded decision prefix and extending it with fresh nodes; after
//! the run, backtracking picks the deepest node with an unexplored,
//! non-sleeping sibling. The independence relation and its soundness
//! argument live in the crate docs ([`crate`]).

use std::collections::{BTreeMap, BTreeSet};

use dimmunix_core::Runtime;
use dimmunix_threadsim::{Outcome, SchedulePoint, Scheduler, StepClass, WaitEdge};

use crate::corpus::edges_fingerprint;
use crate::scenario::Scenario;

/// How aggressively to prune the schedule tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pruning {
    /// Sleep sets + local singletons (the default).
    Dpor,
    /// Branch over every eligible thread at every node — the full tree.
    /// Only tractable for tiny scripts; used by differential tests and
    /// the reduction-factor benchmark.
    Naive,
}

/// Which visible-step pairs commute (see the crate-level soundness
/// argument).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DependenceMode {
    /// Avoidance off (empty history): visible steps on different locks
    /// are independent.
    PerLock,
    /// Avoidance live: all visible steps are pairwise dependent.
    Global,
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Hard cap on schedules attempted (explored + pruned); exceeding it
    /// clears [`Exploration::complete`].
    pub max_schedules: usize,
    /// Per-run step budget; a run that exhausts it counts as
    /// `exhausted` and clears [`Exploration::complete`].
    pub max_steps: u64,
    /// Tree pruning strategy.
    pub pruning: Pruning,
    /// Dependence relation; `None` selects per run from the runtime's
    /// history ([`DependenceMode::PerLock`] iff empty).
    pub dependence: Option<DependenceMode>,
    /// If set, bounds the number of preemptions (a *visible* step of a
    /// non-incumbent running while the incumbent is still eligible) per
    /// schedule. An escape hatch for spaces too big to exhaust; clears
    /// [`Exploration::complete`] whenever it actually excludes a
    /// candidate. Best combined with [`Pruning::Naive`]: sleep sets
    /// assume the sibling subtrees they prune against are fully
    /// explored, so under [`Pruning::Dpor`] a bitten bound can hide
    /// additional traces beyond the ones it excludes directly.
    pub preemption_bound: Option<u32>,
    /// Run every schedule in lockstep against the
    /// [`ReferenceCore`](dimmunix_core::ReferenceCore) shadow.
    pub shadow: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_schedules: 100_000,
            max_steps: 20_000,
            pruning: Pruning::Dpor,
            dependence: None,
            preemption_bound: None,
            shadow: true,
        }
    }
}

/// A schedule that ended in deadlock, with its wait-for cycle.
#[derive(Clone, Debug)]
pub struct DeadlockSchedule {
    /// The decision sequence (thread index per decision point) that
    /// reproduces the deadlock from a fresh runtime.
    pub schedule: Vec<usize>,
    /// The wait-for edges of the final stuck state.
    pub edges: Vec<WaitEdge>,
    /// Canonical fingerprint of `edges` (dedup key).
    pub fingerprint: String,
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct Exploration {
    /// Schedules executed to a terminal outcome (excludes pruned).
    pub runs: usize,
    /// Schedules abandoned as sleep-set-redundant or bound-excluded.
    pub pruned: usize,
    /// Runs that completed.
    pub completed: usize,
    /// Runs that deadlocked.
    pub deadlocked: usize,
    /// Runs that exhausted the step budget (inconclusive).
    pub exhausted: usize,
    /// Whether the walk provably covered the whole schedule space: it
    /// terminated by emptying the tree, with no step-budget exhaustion,
    /// no preemption-bound exclusion and no schedule-cap hit.
    pub complete: bool,
    /// Distinct deadlocks found (deduped by wait-for fingerprint), each
    /// with one witness schedule.
    pub deadlocks: Vec<DeadlockSchedule>,
    /// Outcome fingerprint → number of runs ending in it.
    pub outcomes: BTreeMap<String, usize>,
    /// Invariant violations: lockstep divergences, lost wakeups,
    /// park/wake imbalances, replay nondeterminism.
    pub violations: Vec<String>,
    /// Total scheduling decisions executed across all runs (explored
    /// "states", the benchmark's work measure).
    pub decisions: u64,
    /// Deepest schedule recorded.
    pub max_depth: usize,
    /// Times the preemption bound forced or excluded a choice.
    pub bound_hits: usize,
    /// Total starvation breaks across all runs (the monitor aborting
    /// avoidance); must stay zero for immune exploration.
    pub starvations: u64,
    /// Total yield-timeout aborts across all runs (always zero under the
    /// exploration config, which disables the timeout).
    pub yield_aborts: u64,
}

impl Exploration {
    /// The distinct terminal outcomes seen (fingerprints).
    pub fn distinct_outcomes(&self) -> BTreeSet<String> {
        self.outcomes.keys().cloned().collect()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} runs ({} pruned, {} decisions): {} completed, {} deadlocked ({} distinct)",
            self.runs,
            self.pruned,
            self.decisions,
            self.completed,
            self.deadlocked,
            self.deadlocks.len(),
        );
        if self.exhausted > 0 {
            s.push_str(&format!(", {} exhausted (inconclusive)", self.exhausted));
        }
        s.push_str(if self.complete {
            "; space exhausted"
        } else {
            "; space NOT exhausted"
        });
        if !self.violations.is_empty() {
            s.push_str(&format!("; {} VIOLATIONS", self.violations.len()));
        }
        s
    }
}

/// Canonical fingerprint of a run outcome: `"completed"`, `"exhausted"`,
/// or `"deadlock[...]"` over the sorted wait-for edges.
pub fn outcome_fingerprint(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Completed => "completed".to_string(),
        Outcome::MaxSteps => "exhausted".to_string(),
        Outcome::Deadlock { edges, .. } => format!("deadlock[{}]", edges_fingerprint(edges)),
    }
}

/// One decision point on the DFS stack.
struct Node {
    /// Eligible thread indices, ascending (recorded for replay checks).
    eligible: Vec<usize>,
    /// Step classes parallel to `eligible`.
    classes: Vec<StepClass>,
    /// The child currently being explored.
    chosen: usize,
    /// Children already explored (includes `chosen`).
    done: BTreeSet<usize>,
    /// Sleep set on entry to this node.
    sleep0: BTreeSet<usize>,
    /// No alternatives will ever be explored here (local singleton, or a
    /// bound-forced incumbent).
    singleton: bool,
    /// The thread that took the previous step, if still eligible here
    /// (switching away from it is a preemption).
    incumbent: Option<usize>,
    /// Preemptions consumed on the path into this node.
    preemptions_entering: u32,
}

impl Node {
    fn class_of(&self, v: usize) -> StepClass {
        let i = self
            .eligible
            .iter()
            .position(|&e| e == v)
            .expect("class_of: thread not eligible at node");
        self.classes[i]
    }
}

fn indep(a: StepClass, b: StepClass, mode: DependenceMode) -> bool {
    match (a, b) {
        (StepClass::Local, _) | (_, StepClass::Local) => true,
        (StepClass::Visible(x), StepClass::Visible(y)) => match mode {
            DependenceMode::PerLock => x != y,
            DependenceMode::Global => false,
        },
    }
}

/// A preemption charges the bound only when a *visible* step of a
/// non-incumbent runs while the incumbent is still eligible: `Local`
/// steps commute with everything, so scheduling one early (which the
/// singleton reduction forces) costs nothing.
fn is_preemption(
    incumbent: Option<usize>,
    eligible: &[usize],
    chosen: usize,
    chosen_class: StepClass,
) -> bool {
    matches!(chosen_class, StepClass::Visible(_))
        && matches!(incumbent, Some(inc) if inc != chosen && eligible.contains(&inc))
}

/// The [`Scheduler`] that drives one run: replays `nodes[..replay_len]`,
/// then extends the stack with fresh nodes.
struct Driver<'a> {
    nodes: &'a mut Vec<Node>,
    replay_len: usize,
    depth: usize,
    /// Sleep set for the *next* node (updated as each step executes).
    sleep: BTreeSet<usize>,
    mode: DependenceMode,
    naive: bool,
    bound: Option<u32>,
    last_thread: Option<usize>,
    preemptions: u32,
    /// Depth at which the run became sleep-redundant (run discarded).
    pruned_at: Option<usize>,
    bound_hit: bool,
    error: Option<String>,
}

impl Driver<'_> {
    /// Sleep set for the subtree below `node` after executing `chosen`:
    /// earlier-explored siblings join, everything dependent on the
    /// executed step wakes, and the executed thread itself is awake.
    fn child_sleep(&self, node: &Node, chosen: usize) -> BTreeSet<usize> {
        let cls = node.class_of(chosen);
        let mut s: BTreeSet<usize> = node.sleep0.clone();
        s.extend(node.done.iter().copied().filter(|&t| t != chosen));
        s.retain(|&t| node.eligible.contains(&t) && indep(node.class_of(t), cls, self.mode));
        s.remove(&chosen);
        s
    }

    /// Charges the bound and advances incumbency. Only visible steps
    /// participate: the singleton reduction normalizes traces so local
    /// steps run as soon as they appear, so a switch that merely runs
    /// local bookkeeping neither costs a preemption nor claims the CPU.
    fn note_step(&mut self, node: &Node, chosen: usize) {
        if matches!(node.class_of(chosen), StepClass::Visible(_)) {
            if is_preemption(
                node.incumbent,
                &node.eligible,
                chosen,
                node.class_of(chosen),
            ) {
                self.preemptions += 1;
            }
            self.last_thread = Some(chosen);
        }
    }
}

impl Scheduler for Driver<'_> {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> usize {
        let d = self.depth;
        self.depth += 1;

        if self.error.is_some() {
            return point.eligible[0];
        }
        if d < self.replay_len {
            // Replay a recorded decision, verifying determinism.
            if self.nodes[d].eligible != point.eligible {
                if self.error.is_none() {
                    self.error = Some(format!(
                        "nondeterministic replay at decision {d}: recorded eligible {:?}, got {:?}",
                        self.nodes[d].eligible, point.eligible
                    ));
                }
                return point.eligible[0];
            }
            let chosen = self.nodes[d].chosen;
            self.sleep = self.child_sleep(&self.nodes[d], chosen);
            self.preemptions = self.nodes[d].preemptions_entering;
            if matches!(self.nodes[d].class_of(chosen), StepClass::Visible(_)) {
                if is_preemption(
                    self.nodes[d].incumbent,
                    &self.nodes[d].eligible,
                    chosen,
                    self.nodes[d].class_of(chosen),
                ) {
                    self.preemptions += 1;
                }
                self.last_thread = Some(chosen);
            }
            return chosen;
        }
        if self.pruned_at.is_some() {
            // Redundant run: finish cheaply, record nothing.
            return point.eligible[0];
        }

        // Fresh node.
        let eligible = point.eligible.to_vec();
        let classes = point.classes.to_vec();
        let avail: Vec<usize> = if self.naive {
            eligible.clone()
        } else {
            eligible
                .iter()
                .copied()
                .filter(|t| !self.sleep.contains(t))
                .collect()
        };
        if avail.is_empty() {
            // Every eligible thread sleeps: this run only revisits
            // already-explored traces.
            self.pruned_at = Some(d);
            return point.eligible[0];
        }

        let mut chosen = avail[0];
        let mut singleton = false;
        if !self.naive {
            // Invisible transition: run it now, never branch here.
            if let Some(&t) = avail
                .iter()
                .find(|&&t| point.class_of(t) == Some(StepClass::Local))
            {
                chosen = t;
                singleton = true;
            }
        }
        let incumbent = self.last_thread.filter(|inc| eligible.contains(inc));
        if let (Some(bound), Some(inc)) = (self.bound, incumbent) {
            if chosen != inc
                && matches!(point.class_of(chosen), Some(StepClass::Visible(_)))
                && self.preemptions >= bound
            {
                self.bound_hit = true;
                if avail.contains(&inc) {
                    // Out of preemptions: forced to keep running the
                    // incumbent; alternatives here are never explored.
                    chosen = inc;
                    singleton = true;
                } else {
                    self.pruned_at = Some(d);
                    return point.eligible[0];
                }
            }
        }

        let node = Node {
            eligible,
            classes,
            chosen,
            done: BTreeSet::from([chosen]),
            sleep0: std::mem::take(&mut self.sleep),
            singleton,
            incumbent,
            preemptions_entering: self.preemptions,
        };
        self.sleep = self.child_sleep(&node, chosen);
        self.note_step(&node, chosen);
        self.nodes.push(node);
        chosen
    }
}

/// Advances the DFS stack to the next unexplored schedule; returns `false`
/// when the tree is exhausted. `bound_hits` counts candidates the
/// preemption bound excluded (each clears completeness).
fn backtrack(
    nodes: &mut Vec<Node>,
    naive: bool,
    bound: Option<u32>,
    bound_hits: &mut usize,
) -> bool {
    loop {
        let Some(top) = nodes.last_mut() else {
            return false;
        };
        if top.singleton {
            nodes.pop();
            continue;
        }
        let mut excluded = 0usize;
        let next = top.eligible.iter().copied().find(|t| {
            if top.done.contains(t) || (!naive && top.sleep0.contains(t)) {
                return false;
            }
            if let (Some(b), Some(inc)) = (bound, top.incumbent) {
                if *t != inc
                    && matches!(top.class_of(*t), StepClass::Visible(_))
                    && top.preemptions_entering >= b
                {
                    excluded += 1;
                    return false;
                }
            }
            true
        });
        *bound_hits += excluded;
        match next {
            Some(c) => {
                top.done.insert(c);
                top.chosen = c;
                return true;
            }
            None => {
                nodes.pop();
            }
        }
    }
}

/// Exhaustively explores the schedule space of `scenario`, building a
/// fresh runtime per schedule via `make_runtime` (so runs are independent
/// and the avoidance history is whatever the factory installs — empty for
/// buggy-baseline exploration, vaccinated for immune exploration).
pub fn explore(
    scenario: &Scenario,
    config: &ExploreConfig,
    mut make_runtime: impl FnMut() -> Runtime,
) -> Exploration {
    let mut nodes: Vec<Node> = Vec::new();
    let mut out = Exploration::default();
    let naive = config.pruning == Pruning::Naive;
    let mut capped = false;

    loop {
        if out.runs + out.pruned >= config.max_schedules {
            capped = true;
            break;
        }
        let rt = make_runtime();
        let mode = config.dependence.unwrap_or(if rt.history().is_empty() {
            DependenceMode::PerLock
        } else {
            DependenceMode::Global
        });
        let mut sim =
            scenario.instantiate(&rt, Scenario::sim_config(config.max_steps), config.shadow);
        let replay_len = nodes.len();
        let (report, pruned_at, bound_hit, error) = {
            let mut driver = Driver {
                nodes: &mut nodes,
                replay_len,
                depth: 0,
                sleep: BTreeSet::new(),
                mode,
                naive,
                bound: config.preemption_bound,
                last_thread: None,
                preemptions: 0,
                pruned_at: None,
                bound_hit: false,
                error: None,
            };
            let report = sim.run_with(&mut driver);
            (report, driver.pruned_at, driver.bound_hit, driver.error)
        };

        out.decisions += report.decisions;
        out.max_depth = out.max_depth.max(nodes.len());
        out.bound_hits += bound_hit as usize;
        out.starvations += report.starvations_detected;
        out.yield_aborts += report.yield_aborts;
        if let Some(e) = error {
            out.violations.push(e);
        } else if pruned_at.is_some() {
            out.pruned += 1;
        } else {
            out.runs += 1;
            let schedule: Vec<usize> = nodes.iter().map(|n| n.chosen).collect();
            let fp = outcome_fingerprint(&report.outcome);
            *out.outcomes.entry(fp.clone()).or_default() += 1;
            match &report.outcome {
                Outcome::Completed => {
                    out.completed += 1;
                    let parked = sim.parked_yielders();
                    if !parked.is_empty() {
                        out.violations.push(format!(
                            "lost wakeup: completed schedule {schedule:?} left parked yielders {parked:?}"
                        ));
                    }
                    if report.parks != report.wakes + report.yield_aborts {
                        out.violations.push(format!(
                            "park/wake imbalance on completed schedule {schedule:?}: \
                             parks={} wakes={} yield_aborts={}",
                            report.parks, report.wakes, report.yield_aborts
                        ));
                    }
                }
                Outcome::Deadlock { edges, .. } => {
                    out.deadlocked += 1;
                    if !out.deadlocks.iter().any(|d| d.fingerprint == fp) {
                        out.deadlocks.push(DeadlockSchedule {
                            schedule,
                            edges: edges.clone(),
                            fingerprint: fp,
                        });
                    }
                }
                Outcome::MaxSteps => out.exhausted += 1,
            }
            let div = sim.shadow_divergences();
            if !div.is_empty() {
                let schedule: Vec<usize> = nodes.iter().map(|n| n.chosen).collect();
                out.violations.push(format!(
                    "lockstep divergence on schedule {schedule:?}: {}",
                    div.join("; ")
                ));
            }
        }
        drop(sim);
        drop(rt);

        if !backtrack(
            &mut nodes,
            naive,
            config.preemption_bound,
            &mut out.bound_hits,
        ) {
            break;
        }
    }

    out.complete =
        !capped && out.exhausted == 0 && out.bound_hits == 0 && out.violations.is_empty();
    out
}
