//! Trace minimization: shrink a deadlocking schedule to a short witness.
//!
//! A mined [`DeadlockSchedule`](crate::DeadlockSchedule) is whatever the
//! DFS happened to be exploring — often padded with irrelevant decisions.
//! The minimizer replays candidate schedules leniently (ineligible
//! choices fall back, [`ReplayScheduler`] records the *effective* trace)
//! against fresh runtimes and keeps any candidate that still reproduces
//! the same wait-for fingerprint with strictly fewer decisions. The
//! result is an effective trace: strict-replayable on a fresh runtime,
//! which is what the corpus stores.

use dimmunix_core::Runtime;
use dimmunix_threadsim::{Outcome, ReplayScheduler};

use crate::corpus::edges_fingerprint;
use crate::scenario::Scenario;

/// Shrinks `schedule` while preserving the deadlock identified by
/// `fingerprint` (an [`edges_fingerprint`] value). Returns the shortest
/// reproducing effective trace found — minimal under prefix-truncation
/// and single-decision deletion.
pub fn minimize(
    scenario: &Scenario,
    schedule: &[usize],
    fingerprint: &str,
    max_steps: u64,
    mut make_runtime: impl FnMut() -> Runtime,
) -> Vec<usize> {
    let mut attempt = |choices: &[usize]| -> Option<Vec<usize>> {
        let rt = make_runtime();
        let mut sim = scenario.instantiate(&rt, Scenario::sim_config(max_steps), false);
        let mut sched = ReplayScheduler::lenient(choices.iter().copied());
        let report = sim.run_with(&mut sched);
        drop(sim);
        match &report.outcome {
            Outcome::Deadlock { edges, .. } if edges_fingerprint(edges) == fingerprint => {
                Some(sched.into_trace())
            }
            _ => None,
        }
    };

    // Normalize to an effective trace first; if the input somehow fails
    // to reproduce, hand it back unchanged.
    let Some(mut best) = attempt(schedule) else {
        return schedule.to_vec();
    };

    // Pass 1: shortest reproducing prefix (the lenient fallback finishes
    // the run deterministically).
    for k in 0..best.len() {
        if let Some(trace) = attempt(&best[..k]) {
            if trace.len() < best.len() {
                best = trace;
            }
            break;
        }
    }

    // Pass 2: chunk deletion (delta-debugging style) to fixpoint, with
    // halving chunk sizes — paired decisions like a lock/unlock round
    // only fall out together, so single-decision deletion alone gets
    // stuck. Only strictly shorter effective traces are accepted, so
    // this terminates.
    for size in [8usize, 4, 2, 1] {
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < best.len() {
                let end = (i + size).min(best.len());
                let mut cand = best.clone();
                cand.drain(i..end);
                match attempt(&cand) {
                    Some(trace) if trace.len() < best.len() => {
                        best = trace;
                        improved = true;
                        // Restart the scan: indices shifted.
                        i = 0;
                    }
                    _ => i += 1,
                }
            }
            if !improved {
                break;
            }
        }
    }
    best
}
