//! The invariant harness: the full verify pipeline for one scenario.
//!
//! 1. **Buggy pass** — explore the scenario over fresh empty-history
//!    runtimes (avoidance never fires), with the
//!    [`ReferenceCore`](dimmunix_core::ReferenceCore) shadow comparing
//!    every engine decision and the park/wake accounting checking for
//!    lost wakeups on every completed schedule.
//! 2. **Vaccination** — replay the first mined deadlock strictly on a
//!    throwaway runtime so the monitor captures its signature, then save
//!    the history to a temp file ([`mine_vaccine`]).
//! 3. **Immune pass** — explore again, vaccinating each fresh runtime
//!    from that file. Every schedule must now complete: no deadlock, no
//!    starvation break, no yield abort, and the same lockstep /
//!    lost-wakeup invariants as the buggy pass.
//!
//! Any deviation lands in [`HarnessReport::violations`]; an empty list is
//! the "exhaustively verified" verdict for the scenario (modulo
//! [`Exploration::complete`] on each pass).

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dimmunix_core::Runtime;
use dimmunix_threadsim::{Outcome, ReplayScheduler};

use crate::dpor::{explore, Exploration, ExploreConfig};
use crate::scenario::Scenario;

/// Result of [`verify_scenario`].
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// The avoidance-off exploration.
    pub buggy: Exploration,
    /// The vaccinated exploration (`None` if the buggy pass found no
    /// deadlock to vaccinate against).
    pub immune: Option<Exploration>,
    /// Signatures loaded into each vaccinated runtime.
    pub vaccine_sigs: usize,
    /// Every invariant violation across both passes plus harness-level
    /// expectations (immune pass must complete everything).
    pub violations: Vec<String>,
}

impl HarnessReport {
    /// Whether the scenario passed: both passes ran without violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A process-unique temp path for a mined vaccine file.
fn tmp_vaccine_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dimmunix-explore-{}-{}-{}.vax",
        tag,
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Replays `schedule` strictly on a fresh runtime, requires it to
/// deadlock and capture at least one signature, and saves the resulting
/// history to `path`. Returns the number of signatures captured.
pub fn mine_vaccine(
    scenario: &Scenario,
    schedule: &[usize],
    max_steps: u64,
    path: &Path,
) -> Result<usize, String> {
    let rt = Runtime::new(Scenario::small_config()).map_err(|e| format!("runtime: {e}"))?;
    let mut sim = scenario.instantiate(&rt, Scenario::sim_config(max_steps), false);
    let mut sched = ReplayScheduler::strict(schedule.iter().copied());
    let report = sim.run_with(&mut sched);
    if sched.diverged() {
        return Err(format!(
            "{}: vaccine replay diverged at decision {:?}",
            scenario.name(),
            sched.first_divergence()
        ));
    }
    if !matches!(report.outcome, Outcome::Deadlock { .. }) {
        return Err(format!(
            "{}: vaccine replay did not deadlock ({:?})",
            scenario.name(),
            report.outcome
        ));
    }
    if report.signatures_added == 0 {
        return Err(format!(
            "{}: deadlock replay captured no signature",
            scenario.name()
        ));
    }
    drop(sim);
    rt.history()
        .save_to(path, rt.frame_table(), rt.stack_table())
        .map_err(|e| format!("saving vaccine: {e}"))?;
    Ok(report.signatures_added as usize)
}

/// Runs the full verify pipeline (see the module docs) for `scenario`.
pub fn verify_scenario(scenario: &Scenario, config: &ExploreConfig) -> HarnessReport {
    let buggy = explore(scenario, config, || {
        Runtime::new(Scenario::small_config()).expect("runtime")
    });
    let mut violations = buggy.violations.clone();
    let mut immune = None;
    let mut vaccine_sigs = 0;

    if let Some(first) = buggy.deadlocks.first() {
        let path = tmp_vaccine_path(scenario.name());
        match mine_vaccine(scenario, &first.schedule, config.max_steps, &path) {
            Ok(sigs) => {
                vaccine_sigs = sigs;
                let errs: RefCell<Vec<String>> = RefCell::new(Vec::new());
                let imm = explore(scenario, config, || {
                    let rt = Runtime::new(Scenario::small_config()).expect("runtime");
                    if let Err(e) = rt.vaccinate(&path) {
                        errs.borrow_mut().push(format!("vaccinate: {e}"));
                    }
                    rt
                });
                violations.extend(errs.into_inner());
                violations.extend(imm.violations.iter().cloned());
                if imm.deadlocked > 0 {
                    violations.push(format!(
                        "{}: vaccinated exploration still deadlocked {} times \
                         (first witness {:?})",
                        scenario.name(),
                        imm.deadlocked,
                        imm.deadlocks.first().map(|d| d.schedule.clone()),
                    ));
                }
                if imm.starvations > 0 {
                    violations.push(format!(
                        "{}: vaccinated exploration hit {} starvation breaks",
                        scenario.name(),
                        imm.starvations
                    ));
                }
                if imm.yield_aborts > 0 {
                    violations.push(format!(
                        "{}: vaccinated exploration hit {} yield aborts",
                        scenario.name(),
                        imm.yield_aborts
                    ));
                }
                immune = Some(imm);
            }
            Err(e) => violations.push(e),
        }
        let _ = std::fs::remove_file(&path);
    }

    HarnessReport {
        buggy,
        immune,
        vaccine_sigs,
        violations,
    }
}
