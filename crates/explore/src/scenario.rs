//! Self-contained simulation setups the explorer can instantiate over any
//! runtime, any number of times.
//!
//! Stateless model checking re-executes the same program once per
//! schedule; a [`Scenario`] captures everything a run needs — lock names
//! and per-thread scripts — decoupled from any particular
//! [`Runtime`](dimmunix_core::Runtime), so the driver can build a fresh
//! runtime (empty or vaccinated) for every schedule.

use dimmunix_core::{Config, Runtime};
use dimmunix_threadsim::{LockHandle, Script, Sim, SimConfig};

/// One virtual thread of a scenario: a name and its straight-line script.
#[derive(Clone, Debug)]
pub struct ThreadSpec {
    /// Thread name (shows up in wait-for edges and fixtures).
    pub name: &'static str,
    /// The script the thread executes.
    pub script: Script,
}

/// A bounded multi-threaded program: named locks plus named scripted
/// threads, instantiable as a [`Sim`] against any runtime.
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    locks: Vec<&'static str>,
    threads: Vec<ThreadSpec>,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            locks: Vec::new(),
            threads: Vec::new(),
        }
    }

    /// Scenario name (used in fixtures and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a lock; the returned handle is valid for scripts of this
    /// scenario (handles are indices in declaration order).
    pub fn lock(&mut self, name: &'static str) -> LockHandle {
        self.locks.push(name);
        LockHandle(self.locks.len() - 1)
    }

    /// Declares a thread running `script`.
    pub fn thread(&mut self, name: &'static str, script: Script) {
        self.threads.push(ThreadSpec { name, script });
    }

    /// Declared lock names, in handle order.
    pub fn locks(&self) -> &[&'static str] {
        &self.locks
    }

    /// Declared threads, in spawn order.
    pub fn threads(&self) -> &[ThreadSpec] {
        &self.threads
    }

    /// Builds a [`Sim`] for this scenario against `rt`. Locks are created
    /// in declaration order (so [`LockHandle`]s in the scripts resolve to
    /// the right locks), then threads are spawned in declaration order.
    ///
    /// With `shadow` set, a [`ReferenceCore`](dimmunix_core::ReferenceCore)
    /// shadow is attached before spawning so every engine decision is
    /// checked in lockstep.
    pub fn instantiate(&self, rt: &Runtime, config: SimConfig, shadow: bool) -> Sim {
        let mut sim = Sim::with_config(rt, 0, config);
        if shadow {
            sim.attach_shadow();
        }
        for name in &self.locks {
            sim.lock_handle(name);
        }
        for t in &self.threads {
            sim.spawn(t.name, t.script.clone());
        }
        sim
    }

    /// A small runtime config for per-schedule throwaway runtimes.
    pub fn small_config() -> Config {
        Config {
            max_threads: 8,
            ..Config::default()
        }
    }

    /// The simulator config exploration requires for determinism: the
    /// monitor steps only at quiescence and yield timeouts are disabled,
    /// so a run's behaviour depends only on the decision sequence (see
    /// the crate docs' soundness argument).
    pub fn sim_config(max_steps: u64) -> SimConfig {
        SimConfig {
            max_steps,
            monitor_every: u64::MAX,
            max_yield_steps: None,
            stop_on_deadlock: true,
        }
    }
}

/// Canonical scenarios used by tests, the corpus and `explore_bench`.
pub mod scenarios {
    use super::*;

    /// The classic two-thread AB/BA inversion inside an `update` frame —
    /// the paper's running example. Exactly one deadlock pattern.
    pub fn ab_ba() -> Scenario {
        let mut s = Scenario::new("ab_ba");
        let a = s.lock("A");
        let b = s.lock("B");
        s.thread(
            "T1",
            Script::new().scoped("update", |s| s.lock(a).lock(b).unlock(b).unlock(a)),
        );
        s.thread(
            "T2",
            Script::new().scoped("update", |s| s.lock(b).lock(a).unlock(a).unlock(b)),
        );
        s
    }

    /// `n`-thread ring: thread `i` takes lock `i` then lock `(i+1) % n`.
    /// Deadlocks only when every thread holds its first lock.
    pub fn ring(n: usize) -> Scenario {
        const NAMES: [&str; 6] = ["L0", "L1", "L2", "L3", "L4", "L5"];
        const TNAMES: [&str; 6] = ["R0", "R1", "R2", "R3", "R4", "R5"];
        assert!((2..=NAMES.len()).contains(&n), "ring size out of range");
        let mut s = Scenario::new(format!("ring{n}"));
        let locks: Vec<LockHandle> = NAMES[..n].iter().map(|l| s.lock(l)).collect();
        for i in 0..n {
            let first = locks[i];
            let second = locks[(i + 1) % n];
            s.thread(
                TNAMES[i],
                Script::new().scoped("step", |s| {
                    s.lock(first).lock(second).unlock(second).unlock(first)
                }),
            );
        }
        s
    }

    /// AB/BA buried under distinct call chains on each side, so the two
    /// mined signatures have deeper, asymmetric stacks.
    pub fn stacked_abba() -> Scenario {
        let mut s = Scenario::new("stacked_abba");
        let a = s.lock("cache");
        let b = s.lock("journal");
        s.thread(
            "writer",
            Script::new().scoped("commit", |s| {
                s.scoped("flush", |s| {
                    s.lock_at(a, "pin").compute(1).lock_at(b, "append")
                })
                .unlock(b)
                .unlock(a)
            }),
        );
        s.thread(
            "reaper",
            Script::new().scoped("gc", |s| {
                s.scoped("trim", |s| {
                    s.lock_at(b, "scan").compute(1).lock_at(a, "evict")
                })
                .unlock(a)
                .unlock(b)
            }),
        );
        s
    }

    /// Minimal AB/BA with no call frames or compute — the smallest
    /// deadlock-capable schedule space, cheap enough for naive full
    /// enumeration (differential tests).
    pub fn ab_minimal() -> Scenario {
        let mut s = Scenario::new("ab_minimal");
        let a = s.lock("A");
        let b = s.lock("B");
        s.thread("T1", Script::new().lock(a).lock(b).unlock(b).unlock(a));
        s.thread("T2", Script::new().lock(b).lock(a).unlock(a).unlock(b));
        s
    }

    /// AB/BA attempted with `try_lock` on the inner acquisition: never
    /// deadlocks (the try fails instead of blocking), exercising the
    /// cancel path under exploration.
    pub fn trylock_mix() -> Scenario {
        let mut s = Scenario::new("trylock_mix");
        let a = s.lock("A");
        let b = s.lock("B");
        s.thread(
            "T1",
            Script::new()
                .lock(a)
                .try_lock(b)
                .unlock_if_held(b)
                .unlock(a),
        );
        s.thread(
            "T2",
            Script::new()
                .lock(b)
                .try_lock(a)
                .unlock_if_held(a)
                .unlock(b),
        );
        s
    }

    /// AB/BA where T1 takes and releases `B` in a round before the
    /// inversion: deadlock witnesses come in several lengths (T1 can
    /// block on its first or second `B` acquisition), which is what the
    /// trace minimizer exists to collapse.
    pub fn b_round_detour() -> Scenario {
        let mut s = Scenario::new("b_round_detour");
        let a = s.lock("A");
        let b = s.lock("B");
        s.thread(
            "T1",
            Script::new()
                .lock(a)
                .repeat(2, Script::new().lock(b).unlock(b))
                .unlock(a),
        );
        s.thread("T2", Script::new().lock(b).lock(a).unlock(a).unlock(b));
        s
    }

    /// Two threads taking the same two locks in the *same* order: plenty
    /// of contention, no deadlock under any schedule.
    pub fn same_order() -> Scenario {
        let mut s = Scenario::new("same_order");
        let a = s.lock("A");
        let b = s.lock("B");
        s.thread("T1", Script::new().lock(a).lock(b).unlock(b).unlock(a));
        s.thread("T2", Script::new().lock(a).lock(b).unlock(b).unlock(a));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimmunix_threadsim::Outcome;

    #[test]
    fn instantiate_runs_to_completion_single_thread() {
        let mut s = Scenario::new("solo");
        let a = s.lock("A");
        s.thread("T", Script::new().lock(a).compute(2).unlock(a));
        let rt = Runtime::new(Scenario::small_config()).unwrap();
        let mut sim = s.instantiate(&rt, Scenario::sim_config(10_000), true);
        let report = sim.run();
        assert_eq!(report.outcome, Outcome::Completed);
        assert!(sim.shadow_divergences().is_empty());
    }

    #[test]
    fn canonical_scenarios_are_well_formed() {
        for s in [
            scenarios::ab_ba(),
            scenarios::ring(3),
            scenarios::stacked_abba(),
            scenarios::ab_minimal(),
            scenarios::trylock_mix(),
            scenarios::same_order(),
        ] {
            assert!(!s.locks().is_empty(), "{}", s.name());
            assert!(s.threads().len() >= 2, "{}", s.name());
        }
    }
}
