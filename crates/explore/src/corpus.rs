//! The deadlock corpus: a versioned, line-oriented text format for
//! checked-in fixtures (scenario + schedule + expected outcome), so every
//! deadlock the explorer ever mined keeps gating future engine refactors.
//!
//! Format (`dimmunix-corpus v1`):
//!
//! ```text
//! dimmunix-corpus v1
//! scenario ab_ba
//! lock A
//! lock B
//! thread T1 call:update lock:0 lock:1 unlock:1 unlock:0 ret
//! thread T2 call:update lock:1 lock:0 unlock:0 unlock:1 ret
//! schedule 0 0 1 1 1 0
//! outcome deadlock
//! edge T1 B T2 blocked
//! edge T2 A T1 blocked
//! end
//! ```
//!
//! Lock operands are lock *indices* (declaration order); an optional
//! `@site` suffix names the acquisition site. All names are
//! whitespace-free tokens. A fixture replays two ways:
//! [`Fixture::verify_fresh`] (strict schedule replay on an empty-history
//! runtime must reproduce the recorded outcome byte-for-byte) and
//! [`Fixture::verify_immunized`] (lenient replay on a vaccinated runtime
//! must complete — the mined deadlock is gone).

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use dimmunix_core::Runtime;
use dimmunix_threadsim::{Outcome, ReplayScheduler, Script, WaitEdge};

use crate::scenario::Scenario;

/// Interns a string, so parsed fixtures can feed the `&'static str` APIs
/// of the simulator. Deduplicated: re-parsing fixtures does not leak.
fn intern(s: &str) -> &'static str {
    static CACHE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = CACHE.get_or_init(Default::default).lock().unwrap();
    if let Some(&e) = set.get(s) {
        return e;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Canonical fingerprint of a wait-for edge set: sorted, one token per
/// edge. Used to decide whether two deadlocks are "the same".
pub fn edges_fingerprint(edges: &[WaitEdge]) -> String {
    let mut toks: Vec<String> = edges.iter().map(edge_token).collect();
    toks.sort();
    toks.join(",")
}

fn edge_token(e: &WaitEdge) -> String {
    format!(
        "{}->{}@{}({})",
        e.waiter,
        e.lock,
        e.holder.unwrap_or("-"),
        if e.via_yield { "yield" } else { "blocked" }
    )
}

/// The outcome a fixture expects when strictly replayed on a fresh
/// runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectedOutcome {
    /// The schedule deadlocks (the corpus's reason to exist).
    Deadlock,
    /// The schedule completes (useful for pinning tricky non-deadlocks).
    Completed,
}

/// One corpus entry: a scenario, a schedule, and what must happen.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// The program.
    pub scenario: Scenario,
    /// The decision sequence to replay.
    pub schedule: Vec<usize>,
    /// Expected strict-replay outcome on a fresh runtime.
    pub expected: ExpectedOutcome,
    /// For [`ExpectedOutcome::Deadlock`]: the expected wait-for edges.
    pub edges: Vec<WaitEdge>,
}

const MAGIC: &str = "dimmunix-corpus v1";

impl Fixture {
    /// Replays `schedule` strictly on a fresh runtime and records the
    /// resulting deadlock as a fixture. Errors if the replay diverges or
    /// does not deadlock.
    pub fn mined(scenario: Scenario, schedule: Vec<usize>) -> Result<Fixture, String> {
        let rt = Runtime::new(Scenario::small_config()).map_err(|e| format!("runtime: {e}"))?;
        let mut sim = scenario.instantiate(&rt, Scenario::sim_config(100_000), false);
        let mut sched = ReplayScheduler::strict(schedule.iter().copied());
        let report = sim.run_with(&mut sched);
        drop(sim);
        if sched.diverged() {
            return Err(format!(
                "{}: mining replay diverged at decision {:?}",
                scenario.name(),
                sched.first_divergence()
            ));
        }
        match report.outcome {
            Outcome::Deadlock { edges, .. } => Ok(Fixture {
                scenario,
                schedule,
                expected: ExpectedOutcome::Deadlock,
                edges,
            }),
            other => Err(format!(
                "{}: schedule did not deadlock ({other:?})",
                scenario.name()
            )),
        }
    }
}

fn token_ok(s: &str) -> bool {
    !s.is_empty() && !s.contains(char::is_whitespace) && !s.contains('@') && !s.contains(':')
}

impl Fixture {
    /// Serializes to the v1 text format. Panics if any name is not a
    /// clean token (whitespace, `@` or `:`) — fixtures are authored from
    /// code, so this is a programming error.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        assert!(token_ok(self.scenario.name()), "bad scenario name");
        out.push_str(&format!("scenario {}\n", self.scenario.name()));
        for l in self.scenario.locks() {
            assert!(token_ok(l), "bad lock name {l:?}");
            out.push_str(&format!("lock {l}\n"));
        }
        for t in self.scenario.threads() {
            assert!(token_ok(t.name), "bad thread name {:?}", t.name);
            out.push_str(&format!("thread {}", t.name));
            for op in t.script.ops() {
                out.push(' ');
                out.push_str(&op_token(op, self.scenario.locks().len()));
            }
            out.push('\n');
        }
        out.push_str("schedule");
        for c in &self.schedule {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
        match self.expected {
            ExpectedOutcome::Deadlock => {
                out.push_str("outcome deadlock\n");
                for e in &self.edges {
                    out.push_str(&format!(
                        "edge {} {} {} {}\n",
                        e.waiter,
                        e.lock,
                        e.holder.unwrap_or("-"),
                        if e.via_yield { "yield" } else { "blocked" }
                    ));
                }
            }
            ExpectedOutcome::Completed => out.push_str("outcome completed\n"),
        }
        out.push_str("end\n");
        out
    }

    /// Parses the v1 text format.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        if lines.next() != Some(MAGIC) {
            return Err(format!("not a corpus file (expected `{MAGIC}` header)"));
        }
        let mut scenario: Option<Scenario> = None;
        let mut schedule: Option<Vec<usize>> = None;
        let mut expected: Option<ExpectedOutcome> = None;
        let mut edges: Vec<WaitEdge> = Vec::new();
        let mut saw_end = false;
        for line in lines {
            let (kw, rest) = line.split_once(' ').unwrap_or((line, ""));
            match kw {
                "scenario" => {
                    scenario = Some(Scenario::new(rest.to_string()));
                }
                "lock" => {
                    let s = scenario.as_mut().ok_or("lock before scenario")?;
                    s.lock(intern(rest));
                }
                "thread" => {
                    let s = scenario.as_mut().ok_or("thread before scenario")?;
                    let mut toks = rest.split_whitespace();
                    let name = toks.next().ok_or("thread without a name")?;
                    let nlocks = s.locks().len();
                    let mut script = Script::new();
                    for tok in toks {
                        script = parse_op(script, tok, nlocks)?;
                    }
                    s.thread(intern(name), script);
                }
                "schedule" => {
                    schedule = Some(
                        rest.split_whitespace()
                            .map(|t| t.parse::<usize>().map_err(|e| format!("schedule: {e}")))
                            .collect::<Result<_, _>>()?,
                    );
                }
                "outcome" => {
                    expected = Some(match rest {
                        "deadlock" => ExpectedOutcome::Deadlock,
                        "completed" => ExpectedOutcome::Completed,
                        other => return Err(format!("unknown outcome {other:?}")),
                    });
                }
                "edge" => {
                    let t: Vec<&str> = rest.split_whitespace().collect();
                    let [waiter, lock, holder, kind] = t[..] else {
                        return Err(format!("malformed edge line {line:?}"));
                    };
                    edges.push(WaitEdge {
                        waiter: intern(waiter),
                        lock: intern(lock),
                        holder: (holder != "-").then(|| intern(holder)),
                        via_yield: match kind {
                            "yield" => true,
                            "blocked" => false,
                            other => return Err(format!("unknown edge kind {other:?}")),
                        },
                    });
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unknown keyword {other:?}")),
            }
        }
        if !saw_end {
            return Err("missing `end` line (truncated fixture?)".into());
        }
        let scenario = scenario.ok_or("missing scenario")?;
        if scenario.threads().is_empty() {
            return Err("fixture has no threads".into());
        }
        Ok(Fixture {
            scenario,
            schedule: schedule.ok_or("missing schedule")?,
            expected: expected.ok_or("missing outcome")?,
            edges,
        })
    }

    /// Loads a fixture from `path`.
    pub fn load(path: &Path) -> Result<Fixture, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Saves the fixture to `path`.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.serialize()).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Strictly replays the schedule on `rt` and checks the recorded
    /// expectation: outcome kind, wait-for fingerprint (for deadlocks)
    /// and zero replay divergence. `rt` should have an empty history.
    pub fn verify_fresh(&self, rt: &Runtime) -> Result<(), String> {
        let mut sim = self
            .scenario
            .instantiate(rt, Scenario::sim_config(100_000), false);
        let mut sched = ReplayScheduler::strict(self.schedule.iter().copied());
        let report = sim.run_with(&mut sched);
        if let Some(d) = sched.first_divergence() {
            return Err(format!(
                "{}: strict replay diverged at decision {d} (outcome {:?})",
                self.scenario.name(),
                report.outcome
            ));
        }
        match (self.expected, &report.outcome) {
            (ExpectedOutcome::Completed, Outcome::Completed) => Ok(()),
            (ExpectedOutcome::Deadlock, Outcome::Deadlock { edges, .. }) => {
                let (want, got) = (edges_fingerprint(&self.edges), edges_fingerprint(edges));
                if want == got {
                    Ok(())
                } else {
                    Err(format!(
                        "{}: deadlock mismatch: fixture {want} vs replay {got}",
                        self.scenario.name()
                    ))
                }
            }
            (want, got) => Err(format!(
                "{}: expected {want:?}, replay ended {got:?}",
                self.scenario.name()
            )),
        }
    }

    /// Leniently replays the schedule on `rt` — a runtime vaccinated with
    /// this deadlock's signature — and requires the run to complete with
    /// no starvation breaks and no yield aborts: the immunized engine
    /// must steer the once-deadlocking schedule to completion.
    pub fn verify_immunized(&self, rt: &Runtime) -> Result<(), String> {
        let mut sim = self
            .scenario
            .instantiate(rt, Scenario::sim_config(100_000), false);
        let mut sched = ReplayScheduler::lenient(self.schedule.iter().copied());
        let report = sim.run_with(&mut sched);
        if report.outcome != Outcome::Completed
            || report.starvations_detected != 0
            || report.yield_aborts != 0
        {
            return Err(format!(
                "{}: immunized replay must complete cleanly, got {:?} \
                 (starvations={}, yield_aborts={})",
                self.scenario.name(),
                report.outcome,
                report.starvations_detected,
                report.yield_aborts
            ));
        }
        Ok(())
    }
}

/// Loads every `*.corpus` fixture in `dir`, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Fixture)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "corpus"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| Fixture::load(&p).map(|f| (p, f)))
        .collect()
}

/// The checked-in corpus directory (`tests/fixtures/corpus/` at the repo
/// root).
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/corpus"
    ))
}

fn op_token(op: &dimmunix_threadsim::Op, nlocks: usize) -> String {
    use dimmunix_threadsim::Op;
    let lock_tok = |kw: &str, l: dimmunix_threadsim::LockHandle, site: Option<&'static str>| {
        assert!(l.0 < nlocks, "script references undeclared lock {}", l.0);
        match site {
            Some(s) => {
                assert!(token_ok(s), "bad site name {s:?}");
                format!("{kw}:{}@{s}", l.0)
            }
            None => format!("{kw}:{}", l.0),
        }
    };
    match *op {
        Op::Lock(l, site) => lock_tok("lock", l, site),
        Op::TryLock(l, site) => lock_tok("try", l, site),
        Op::Unlock(l) => format!("unlock:{}", l.0),
        Op::UnlockIfHeld(l) => format!("unlockif:{}", l.0),
        Op::Compute(n) => format!("compute:{n}"),
        Op::Call(name) => {
            assert!(token_ok(name), "bad call name {name:?}");
            format!("call:{name}")
        }
        Op::Return => "ret".to_string(),
    }
}

fn parse_op(script: Script, tok: &str, nlocks: usize) -> Result<Script, String> {
    use dimmunix_threadsim::LockHandle;
    if tok == "ret" {
        return Ok(script.ret());
    }
    let (kw, operand) = tok
        .split_once(':')
        .ok_or_else(|| format!("malformed op token {tok:?}"))?;
    let lock_of = |s: &str| -> Result<LockHandle, String> {
        let i: usize = s.parse().map_err(|e| format!("op {tok:?}: {e}"))?;
        if i >= nlocks {
            return Err(format!("op {tok:?}: lock index {i} out of range"));
        }
        Ok(LockHandle(i))
    };
    Ok(match kw {
        "lock" | "try" => {
            let (idx, site) = match operand.split_once('@') {
                Some((i, s)) => (i, Some(intern(s))),
                None => (operand, None),
            };
            let l = lock_of(idx)?;
            match (kw, site) {
                ("lock", Some(s)) => script.lock_at(l, s),
                ("lock", None) => script.lock(l),
                ("try", Some(s)) => script.try_lock_at(l, s),
                ("try", None) => script.try_lock(l),
                _ => unreachable!(),
            }
        }
        "unlock" => script.unlock(lock_of(operand)?),
        "unlockif" => script.unlock_if_held(lock_of(operand)?),
        "compute" => script.compute(operand.parse().map_err(|e| format!("op {tok:?}: {e}"))?),
        "call" => script.call(intern(operand)),
        other => return Err(format!("unknown op keyword {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenarios;

    #[test]
    fn round_trips_through_text() {
        let fx = Fixture {
            scenario: scenarios::stacked_abba(),
            schedule: vec![0, 0, 0, 1, 1, 1, 1, 0, 1],
            expected: ExpectedOutcome::Deadlock,
            edges: vec![
                WaitEdge {
                    waiter: "writer",
                    lock: "journal",
                    holder: Some("reaper"),
                    via_yield: false,
                },
                WaitEdge {
                    waiter: "reaper",
                    lock: "cache",
                    holder: Some("writer"),
                    via_yield: false,
                },
            ],
        };
        let text = fx.serialize();
        let back = Fixture::parse(&text).unwrap();
        assert_eq!(back.serialize(), text, "round trip must be stable");
        assert_eq!(back.schedule, fx.schedule);
        assert_eq!(back.expected, fx.expected);
        assert_eq!(edges_fingerprint(&back.edges), edges_fingerprint(&fx.edges));
        // Scripts survive: same ops, same sites.
        for (a, b) in fx
            .scenario
            .threads()
            .iter()
            .zip(back.scenario.threads().iter())
        {
            assert_eq!(a.name, b.name);
            assert_eq!(a.script.ops(), b.script.ops());
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Fixture::parse("garbage").is_err());
        assert!(Fixture::parse("dimmunix-corpus v2\nend\n").is_err());
        let truncated = "dimmunix-corpus v1\nscenario x\nlock A\nthread T lock:0\nschedule 0\noutcome deadlock\n";
        assert!(Fixture::parse(truncated).unwrap_err().contains("end"));
        let bad_lock = "dimmunix-corpus v1\nscenario x\nlock A\nthread T lock:7\nschedule 0\noutcome completed\nend\n";
        assert!(Fixture::parse(bad_lock)
            .unwrap_err()
            .contains("out of range"));
    }
}
