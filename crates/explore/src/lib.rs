//! Stateless model checking for the Dimmunix engine: exhaustive
//! enumeration of thread interleavings over bounded [`Scenario`] scripts,
//! with dynamic partial-order reduction (DPOR), an invariant harness, a
//! schedule minimizer and a replayable deadlock corpus.
//!
//! Random seed sweeps ([`dimmunix_threadsim::explore`]) answer "does some
//! schedule deadlock?"; this crate answers "does **any** schedule violate
//! an invariant?" by walking the whole schedule space of small scripts.
//!
//! # The schedule space
//!
//! A [`dimmunix_threadsim::Sim`] run is fully determined by the sequence
//! of scheduler decisions: at each decision point the set of eligible
//! threads and the class of each thread's next step
//! ([`dimmunix_threadsim::StepClass`]) are exposed through
//! [`dimmunix_threadsim::SchedulePoint`], and the explorer's
//! [`Scheduler`](dimmunix_threadsim::Scheduler) picks one thread. The
//! explorer re-executes the scenario from scratch for every schedule
//! (stateless model checking), replaying a recorded prefix and branching
//! at the deepest unexplored decision — a depth-first walk of the
//! schedule tree.
//!
//! Determinism requires that a run's behaviour depend *only* on the
//! decision sequence. [`Scenario::sim_config`] pins the two sources of
//! timing sensitivity: the monitor only steps at quiescence
//! (`monitor_every = u64::MAX`, and the simulator always steps it when no
//! thread is runnable), and yield timeouts are disabled
//! (`max_yield_steps = None`). Under that configuration the explorer
//! verifies replay determinism on every run: a replayed prefix must
//! reproduce the recorded eligible sets exactly, else the run is flagged
//! as a nondeterminism violation.
//!
//! # Independence and soundness of the reduction
//!
//! DPOR prunes schedules that are *Mazurkiewicz-equivalent* — reachable
//! from an explored schedule by swapping adjacent independent steps. Two
//! steps are independent when executing them in either order yields the
//! same state and neither enables/disables the other. The explorer derives
//! independence from [`StepClass`](dimmunix_threadsim::StepClass) alone:
//!
//! * `Local` steps (`Compute`, `Call`, `Return`, thread exit) touch only
//!   the stepping thread's program counter, frame stack and the global
//!   step counter. With the monitor quiesced and yield timeouts off,
//!   simulated time has no observable effect, so a `Local` step is
//!   independent of **every** other step. A thread whose next step is
//!   `Local` therefore forms a singleton persistent set: the explorer
//!   runs it immediately and never branches at that node ("invisible
//!   transition" reduction).
//! * `Visible(l)` steps (lock, try-lock, unlock, park, resume on lock
//!   `l`) interact with lock state, the avoidance engine and the FIFO
//!   wait queues. Their independence depends on the engine mode, chosen
//!   per run by inspecting the runtime's history
//!   ([`DependenceMode`]):
//!   * **`PerLock`** (empty history — avoidance never yields): every
//!     acquire gets GO, so two visible steps on *different* locks
//!     commute: lock state is per-lock, engine resource records are
//!     per-thread appends whose cross-thread order is unobservable, and
//!     monitor event lanes are per-thread SPSC queues drained in slot
//!     order at quiescence — the reconstructed wait-for graph depends
//!     only on per-thread event streams, not on their interleaving.
//!     Same-lock steps (FIFO queue order, ownership hand-off) are
//!     dependent and never pruned.
//!   * **`Global`** (non-empty history — avoidance live): a yield
//!     decision is computed from a *cross-thread* cover search over every
//!     thread's held/requested resources, so any two visible steps may
//!     enable or disable each other. The explorer conservatively treats
//!     all visible pairs as dependent; only the `Local` singleton
//!     reduction applies. This degrades reduction, never soundness.
//!
//! Sleep sets prune the remaining commutations: after exploring child `c`
//! at a node, `c` is put to sleep for the later siblings' subtrees and
//! woken only by a step dependent on `c`'s. Because a sleeping thread's
//! next-step class cannot change while it sleeps (only the thread's own
//! step changes its state), the class-based dependence test is stable.
//! Together — full branching at visible nodes (the conservative
//! persistent set), singleton `Local` nodes, and sleep sets — every
//! Mazurkiewicz trace of the scenario is explored at least once, so any
//! reachable deadlock, lockstep divergence or lost wakeup is found.
//! [`Exploration::complete`] reports whether the walk covered the space
//! without hitting the schedule cap, the step budget or a preemption
//! bound.
//!
//! # Pipeline
//!
//! ```text
//! Scenario ──▶ explore (DPOR, avoidance off) ──▶ deadlock schedules
//!                   │                                  │
//!                   │ lockstep vs ReferenceCore        ▼
//!                   │ no-lost-wakeup accounting    minimize ──▶ corpus
//!                   ▼                                  │       fixture
//!              violations == ∅                         ▼
//!              Scenario ──▶ explore (vaccinated) ──▶ must complete
//! ```
//!
//! [`harness::verify_scenario`] runs the full pipeline; [`corpus`] gives
//! the fixtures a versioned on-disk format so refactors of the engine are
//! gated by replaying every previously-mined deadlock.

pub mod corpus;
pub mod dpor;
pub mod harness;
pub mod minimize;
pub mod scenario;

pub use corpus::{default_corpus_dir, edges_fingerprint, load_dir, ExpectedOutcome, Fixture};
pub use dpor::{
    explore, outcome_fingerprint, DeadlockSchedule, DependenceMode, Exploration, ExploreConfig,
    Pruning,
};
pub use harness::{mine_vaccine, verify_scenario, HarnessReport};
pub use minimize::minimize;
pub use scenario::{scenarios, Scenario, ThreadSpec};
