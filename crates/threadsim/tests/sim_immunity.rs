//! Simulator-level immunity tests: the full learn-then-avoid loop under
//! deterministic schedules.

use dimmunix_core::{Config, CycleKind, Runtime};
use dimmunix_threadsim::{explore, Outcome, Script, Sim, SimConfig};

fn abba_sim(rt: &Runtime, seed: u64) -> Sim {
    let mut sim = Sim::new(rt, seed);
    let a = sim.lock_handle("A");
    let b = sim.lock_handle("B");
    sim.spawn(
        "T1",
        Script::new().scoped("update", |s| {
            s.lock(a).compute(5).lock(b).unlock(b).unlock(a)
        }),
    );
    sim.spawn(
        "T2",
        Script::new().scoped("update", |s| {
            s.lock(b).compute(5).lock(a).unlock(a).unlock(b)
        }),
    );
    sim
}

fn find_deadlock_seed(rt: &Runtime) -> u64 {
    (0..256)
        .find(|&s| matches!(abba_sim(rt, s).run().outcome, Outcome::Deadlock { .. }))
        .expect("ABBA must deadlock under some schedule")
}

#[test]
fn immunity_develops_after_first_deadlock() {
    let rt = Runtime::new(Config::default()).unwrap();
    let seed = find_deadlock_seed(&rt);
    assert_eq!(rt.history().len(), 1, "signature captured");
    assert_eq!(rt.history().snapshot()[0].kind, CycleKind::Deadlock);
    // The exact schedule that deadlocked now completes — and every other
    // schedule too.
    for s in [seed, seed + 1, seed + 17, 1234] {
        let report = abba_sim(&rt, s).run();
        assert!(
            report.completed(),
            "seed {s} must complete, got {:?}",
            report.outcome
        );
    }
    // No new signatures were needed.
    assert_eq!(rt.history().len(), 1);
}

#[test]
fn avoided_run_reports_yields() {
    let rt = Runtime::new(Config::default()).unwrap();
    let seed = find_deadlock_seed(&rt);
    let report = abba_sim(&rt, seed).run();
    assert!(report.completed());
    assert!(
        report.yields >= 1,
        "avoidance must have yielded at least once: {report:?}"
    );
    assert_eq!(report.deadlocks_detected, 0);
}

#[test]
fn one_hundred_trials_all_complete_after_immunization() {
    // The Table 1 protocol: 100 trials with the signature in history.
    let rt = Runtime::new(Config::default()).unwrap();
    find_deadlock_seed(&rt);
    let report = explore(0..100, |seed| abba_sim(&rt, seed).run());
    assert_eq!(report.completed_seeds.len(), 100, "{report:?}");
    assert!(report.total_yields >= 1);
}

#[test]
fn ignore_yields_mode_still_deadlocks() {
    // The paper's control configuration: instrumentation on, decisions
    // ignored — the exploit must still deadlock.
    let learn_rt = Runtime::new(Config::default()).unwrap();
    let seed = find_deadlock_seed(&learn_rt);
    // Transfer the signature to a runtime that ignores yields.
    let path = std::env::temp_dir().join(format!("dimmunix-sim-{}.dlk", std::process::id()));
    learn_rt.history().set_path(Some(path.clone()));
    learn_rt.save_history().unwrap();
    let rt = Runtime::new(Config {
        enforce_yields: false,
        ..Config::default()
    })
    .unwrap();
    rt.vaccinate(&path).unwrap();
    let report = abba_sim(&rt, seed).run();
    assert!(
        matches!(report.outcome, Outcome::Deadlock { .. }),
        "ignoring yields must reproduce the deadlock: {:?}",
        report.outcome
    );
    assert!(report.yields >= 1, "the would-be yield is still counted");
    std::fs::remove_file(&path).ok();
}

#[test]
fn three_thread_cycle_learned_and_avoided() {
    let rt = Runtime::new(Config::default()).unwrap();
    let build = |rt: &Runtime, seed: u64| {
        let mut sim = Sim::new(rt, seed);
        let a = sim.lock_handle("A");
        let b = sim.lock_handle("B");
        let c = sim.lock_handle("C");
        sim.spawn(
            "T1",
            Script::new().scoped("w1", |s| s.lock(a).compute(3).lock(b).unlock(b).unlock(a)),
        );
        sim.spawn(
            "T2",
            Script::new().scoped("w2", |s| s.lock(b).compute(3).lock(c).unlock(c).unlock(b)),
        );
        sim.spawn(
            "T3",
            Script::new().scoped("w3", |s| s.lock(c).compute(3).lock(a).unlock(a).unlock(c)),
        );
        sim
    };
    let seed = (0..512)
        .find(|&s| matches!(build(&rt, s).run().outcome, Outcome::Deadlock { .. }))
        .expect("3-cycle must deadlock under some schedule");
    let sig = &rt.history().snapshot()[0];
    assert_eq!(sig.size(), 3, "three stacks in the signature");
    let report = build(&rt, seed).run();
    assert!(report.completed(), "{:?}", report.outcome);
}

#[test]
fn trylock_fallback_never_deadlocks() {
    // A program using trylock with a give-up path cannot deadlock; verify
    // the cancel path keeps the avoidance state clean over many runs.
    let rt = Runtime::new(Config::default()).unwrap();
    let report = explore(0..50, |seed| {
        let mut sim = Sim::new(&rt, seed);
        let a = sim.lock_handle("A");
        let b = sim.lock_handle("B");
        sim.spawn(
            "T1",
            Script::new()
                .lock(a)
                .compute(2)
                .try_lock(b)
                .unlock_if_held(b)
                .unlock(a),
        );
        sim.spawn(
            "T2",
            Script::new()
                .lock(b)
                .compute(2)
                .try_lock(a)
                .unlock_if_held(a)
                .unlock(b),
        );
        sim.run()
    });
    assert_eq!(report.completed_seeds.len(), 50, "{report:?}");
    assert!(rt.history().is_empty(), "no deadlock, no signature");
}

#[test]
fn signatures_survive_simulated_restart() {
    // Two runtimes sharing one history file model two program executions.
    let path =
        std::env::temp_dir().join(format!("dimmunix-sim-restart-{}.dlk", std::process::id()));
    std::fs::remove_file(&path).ok();
    let seed;
    {
        let rt = Runtime::new(Config {
            history_path: Some(path.clone()),
            ..Config::default()
        })
        .unwrap();
        seed = find_deadlock_seed(&rt);
        rt.save_history().unwrap();
    }
    {
        let rt = Runtime::new(Config {
            history_path: Some(path.clone()),
            ..Config::default()
        })
        .unwrap();
        assert_eq!(rt.history().len(), 1, "history loaded at startup");
        let report = abba_sim(&rt, seed).run();
        assert!(
            report.completed(),
            "immune after restart: {:?}",
            report.outcome
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn starvation_is_broken_not_fatal() {
    // Force an avoidance-induced starvation: T0 yields because of T1, but
    // T1 is blocked behind T2 which never releases until T0 progresses...
    // Simplest robust check: run a 4-thread mix long enough that yields
    // happen, and assert the sim always terminates (weak immunity breaks
    // any starvation).
    let rt = Runtime::new(Config::default()).unwrap();
    let build = |rt: &Runtime, seed: u64| {
        let mut sim = Sim::with_config(
            rt,
            seed,
            SimConfig {
                max_yield_steps: Some(500),
                ..SimConfig::default()
            },
        );
        let a = sim.lock_handle("A");
        let b = sim.lock_handle("B");
        let c = sim.lock_handle("C");
        for (name, first, second) in [("T1", a, b), ("T2", b, a), ("T3", b, c), ("T4", c, a)] {
            sim.spawn(
                name,
                Script::new().scoped("mix", |s| {
                    s.lock(first)
                        .compute(3)
                        .lock(second)
                        .unlock(second)
                        .unlock(first)
                }),
            );
        }
        sim
    };
    let mut completed_after = 0;
    for seed in 0..64 {
        let r = build(&rt, seed).run();
        if r.completed() {
            completed_after += 1;
        }
    }
    assert!(completed_after > 0);
    // After enough learning, everything completes.
    let report = explore(100..150, |seed| build(&rt, seed).run());
    assert_eq!(
        report.completed_seeds.len() + report.deadlock_seeds.len(),
        50
    );
    assert_eq!(report.exhausted_seeds.len(), 0, "sim never wedges");
}

#[test]
fn weak_immunity_reoccurrence_is_bounded() {
    // §5.4: with weak immunity a pattern can reoccur, but boundedly (the
    // nesting depth). Starvation breaks may let the original deadlock slip
    // through; the history then gains the starvation signature and the
    // program converges. We check convergence: after enough runs, no new
    // signatures are added.
    let rt = Runtime::new(Config::default()).unwrap();
    for seed in 0..64 {
        abba_sim(&rt, seed).run();
    }
    let sigs_then = rt.history().len();
    for seed in 64..128 {
        abba_sim(&rt, seed).run();
    }
    assert_eq!(rt.history().len(), sigs_then, "history converged");
}

#[test]
fn eight_thread_storm_completes_on_sharded_match_path() {
    // After immunization, eight simulated threads hammer the same ABBA
    // pattern through the *same* call sites, so nearly every second-lock
    // request lands in a populated signature-member bucket. This drives
    // the sharded matching path — occupancy prechecks, shard-ordered
    // cover searches, and the sharded wake index under repeated yield
    // storms — from simulated threads rather than OS threads.
    let rt = Runtime::new(Config::default()).unwrap();
    find_deadlock_seed(&rt);
    let report = explore(0..16, |seed| {
        let mut sim = Sim::new(&rt, seed);
        let a = sim.lock_handle("A");
        let b = sim.lock_handle("B");
        for i in 0..8 {
            let (first, second) = if i % 2 == 0 { (a, b) } else { (b, a) };
            sim.spawn(
                "W",
                Script::new().scoped("update", |s| {
                    s.lock(first)
                        .compute(3)
                        .lock(second)
                        .unlock(second)
                        .unlock(first)
                }),
            );
        }
        sim.run()
    });
    assert_eq!(report.completed_seeds.len(), 16, "{report:?}");
    assert!(
        report.total_yields >= 1,
        "storm must have avoided: {report:?}"
    );
}
