//! Determinism regression tests: the simulator is the reproduction's
//! measurement instrument, so identical seeds must replay identical
//! schedules, and immunity must converge regardless of which seed first
//! exposes the §4 `update(A,B) ∥ update(B,A)` exploit.

use dimmunix_core::{Config, Runtime};
use dimmunix_threadsim::{Outcome, RunReport, Script, Sim};

/// One execution of the paper's §4 exploit: two threads updating the same
/// pair of resources in opposite lock orders through a shared call site.
fn run_update_exploit(rt: &Runtime, seed: u64) -> RunReport {
    let mut sim = Sim::new(rt, seed);
    let a = sim.lock_handle("A");
    let b = sim.lock_handle("B");
    for (name, x, y) in [("update-ab", a, b), ("update-ba", b, a)] {
        sim.spawn(
            name,
            Script::new().scoped("update", |s| {
                s.lock_at(x, "acq")
                    .compute(2)
                    .lock_at(y, "acq")
                    .unlock(y)
                    .unlock(x)
            }),
        );
    }
    sim.run()
}

/// The same `Sim` seed over the same initial state must produce
/// byte-identical `Outcome`s (and whole run reports) across two runs.
#[test]
fn same_seed_same_outcome_bytes() {
    for seed in [0, 3, 17, 99, 4242] {
        let reports: Vec<RunReport> = (0..2)
            .map(|_| {
                let rt = Runtime::new(Config::default()).unwrap();
                run_update_exploit(&rt, seed)
            })
            .collect();
        // `RunReport`'s Debug form covers the outcome and every counter, so
        // byte-equality here means the schedules were identical.
        assert_eq!(
            format!("{:?}", reports[0]),
            format!("{:?}", reports[1]),
            "seed {seed} replayed differently"
        );
    }
}

/// Two distinct seeds must both converge to immunity on the §4 exploit:
/// once a seed's schedule deadlocks and the signature is learned, every
/// later run — including the one that previously deadlocked — completes.
#[test]
fn distinct_seeds_both_converge_to_immunity() {
    for base_seed in [5_u64, 12_345] {
        let rt = Runtime::new(Config::default()).unwrap();
        let mut first_deadlock = None;
        for i in 0..256 {
            let seed = base_seed + i;
            let report = run_update_exploit(&rt, seed);
            match (&report.outcome, first_deadlock) {
                (Outcome::Deadlock { .. }, None) => first_deadlock = Some(seed),
                (Outcome::Deadlock { .. }, Some(_)) => panic!(
                    "base seed {base_seed}: deadlocked again at seed {seed} \
                     after the signature was learned"
                ),
                _ => {}
            }
        }
        let learned =
            first_deadlock.unwrap_or_else(|| panic!("base seed {base_seed}: exploit never fired"));
        assert_eq!(rt.history().len(), 1, "exactly one signature learned");
        // The schedule that deadlocked is now immune.
        let replay = run_update_exploit(&rt, learned);
        assert_eq!(
            replay.outcome,
            Outcome::Completed,
            "base seed {base_seed}: seed {learned} must be immune after learning"
        );
        assert!(replay.yields > 0, "immunity must come from yielding");
    }
}
