//! Scripts: the programs virtual threads execute.

use crate::sim::LockHandle;

/// An optional explicit source-site label for a lock operation.
///
/// By default a lock op's call-site frame is derived from its position in
/// the script, which distinguishes textually distinct operations — like
/// distinct source lines. When several scripts share a logical function
/// (e.g. two different callers both running `Connection.close()`), give the
/// shared operations the *same* site label so their frames coincide across
/// scripts, exactly as shared code produces shared return addresses.
pub type Site = Option<&'static str>;

/// One scripted operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Blocking lock acquisition (routed through the Dimmunix hooks).
    Lock(LockHandle, Site),
    /// Release (the `release` hook runs before the simulated unlock).
    Unlock(LockHandle),
    /// Release only if this thread currently holds the lock — the natural
    /// companion of [`Op::TryLock`] fallback paths.
    UnlockIfHeld(LockHandle),
    /// Non-blocking acquisition; on failure (contention or yield decision)
    /// execution simply continues — like taking the fallback path after
    /// `pthread_mutex_trylock` fails.
    TryLock(LockHandle, Site),
    /// Spin for `n` simulated time steps (models δin/δout computation).
    Compute(u32),
    /// Push a named call frame (shapes the signature stacks).
    Call(&'static str),
    /// Pop the innermost call frame.
    Return,
}

/// A straight-line program for one virtual thread, built fluently.
///
/// Call frames pushed with [`Script::call`] become part of every later lock
/// operation's call stack until the matching [`Script::ret`]; each lock op
/// additionally contributes its own site frame.
#[derive(Clone, Default, Debug)]
pub struct Script {
    ops: Vec<Op>,
}

impl Script {
    /// Empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a blocking lock (site derived from script position).
    pub fn lock(mut self, l: LockHandle) -> Self {
        self.ops.push(Op::Lock(l, None));
        self
    }

    /// Appends a blocking lock at an explicitly named source site.
    pub fn lock_at(mut self, l: LockHandle, site: &'static str) -> Self {
        self.ops.push(Op::Lock(l, Some(site)));
        self
    }

    /// Appends an unlock.
    pub fn unlock(mut self, l: LockHandle) -> Self {
        self.ops.push(Op::Unlock(l));
        self
    }

    /// Appends a try-lock (site derived from script position).
    pub fn try_lock(mut self, l: LockHandle) -> Self {
        self.ops.push(Op::TryLock(l, None));
        self
    }

    /// Appends a conditional unlock (no-op when not held).
    pub fn unlock_if_held(mut self, l: LockHandle) -> Self {
        self.ops.push(Op::UnlockIfHeld(l));
        self
    }

    /// Appends a try-lock at an explicitly named source site.
    pub fn try_lock_at(mut self, l: LockHandle, site: &'static str) -> Self {
        self.ops.push(Op::TryLock(l, Some(site)));
        self
    }

    /// Appends `n` steps of computation.
    pub fn compute(mut self, n: u32) -> Self {
        self.ops.push(Op::Compute(n));
        self
    }

    /// Pushes a call frame.
    pub fn call(mut self, name: &'static str) -> Self {
        self.ops.push(Op::Call(name));
        self
    }

    /// Pops the innermost call frame.
    pub fn ret(mut self) -> Self {
        self.ops.push(Op::Return);
        self
    }

    /// Runs `f` inside a named call frame (`call` … `ret` bracket).
    pub fn scoped(self, name: &'static str, f: impl FnOnce(Self) -> Self) -> Self {
        f(self.call(name)).ret()
    }

    /// Appends all ops of `other`.
    pub fn then(mut self, other: Script) -> Self {
        self.ops.extend(other.ops);
        self
    }

    /// Repeats `other` `n` times.
    pub fn repeat(mut self, n: usize, other: Script) -> Self {
        for _ in 0..n {
            self.ops.extend(other.ops.iter().copied());
        }
        self
    }

    /// The op sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops() {
        let l = LockHandle(0);
        let s = Script::new().call("f").lock(l).compute(3).unlock(l).ret();
        assert_eq!(
            s.ops(),
            &[
                Op::Call("f"),
                Op::Lock(l, None),
                Op::Compute(3),
                Op::Unlock(l),
                Op::Return
            ]
        );
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn scoped_brackets_with_call_ret() {
        let l = LockHandle(1);
        let s = Script::new().scoped("update", |s| s.lock_at(l, "s3").unlock(l));
        assert_eq!(s.ops()[0], Op::Call("update"));
        assert_eq!(s.ops()[1], Op::Lock(l, Some("s3")));
        assert_eq!(*s.ops().last().unwrap(), Op::Return);
    }

    #[test]
    fn then_and_repeat_concatenate() {
        let a = Script::new().compute(1);
        let b = Script::new().compute(2);
        assert_eq!(a.clone().then(b.clone()).len(), 2);
        assert_eq!(a.repeat(3, b).len(), 4);
    }
}
