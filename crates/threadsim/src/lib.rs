//! Deterministic thread simulator for reproducing deadlock interleavings.
//!
//! The paper validates Dimmunix by reproducing reported deadlocks with
//! timing-loop "exploits" — test cases that force exactly the interleaving
//! that deadlocks (§7.1.1). Rust cannot portably force OS-thread
//! interleavings, so this crate provides the equivalent: **virtual threads**
//! running lock/unlock/compute scripts under a seeded cooperative scheduler
//! that drives the real [`dimmunix_core::AvoidanceCore`] and steps the real
//! monitor deterministically (embedded mode).
//!
//! Because the avoidance engine is thread-agnostic, the simulator exercises
//! *the same code paths* as real threads: `request` decisions, `Allowed`
//! bookkeeping, yield causes and wakeups, starvation breaking, signature
//! capture and matching. Only the parking primitive differs (simulated
//! time instead of condvars).
//!
//! ```
//! use dimmunix_core::{Config, Runtime};
//! use dimmunix_threadsim::{Outcome, Script, Sim};
//!
//! let rt = Runtime::new(Config::default()).unwrap();
//! // The paper's §4 example: update(A,B) ∥ update(B,A).
//! let run = |rt: &Runtime, seed: u64| {
//!     let mut sim = Sim::new(rt, seed);
//!     let a = sim.lock_handle("A");
//!     let b = sim.lock_handle("B");
//!     sim.spawn("T1", Script::new().call("update").lock(a).lock(b).unlock(b).unlock(a));
//!     sim.spawn("T2", Script::new().call("update").lock(b).lock(a).unlock(a).unlock(b));
//!     sim.run()
//! };
//! // Hunt for a schedule that deadlocks (the paper's "exploit")...
//! let seed = (0..64)
//!     .find(|&s| matches!(run(&rt, s).outcome, Outcome::Deadlock { .. }))
//!     .expect("some schedule must deadlock");
//! // ...the program is now immune: the very same schedule completes.
//! assert!(matches!(run(&rt, seed).outcome, Outcome::Completed));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod explore;
pub mod sched;
pub mod script;
pub mod sim;

pub use explore::{explore, ExploreReport};
pub use sched::{RandomScheduler, ReplayScheduler, SchedulePoint, Scheduler, StepClass};
pub use script::{Op, Script};
pub use sim::{LockHandle, Outcome, RunReport, Sim, SimConfig, WaitEdge};
