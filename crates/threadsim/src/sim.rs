//! The cooperative scheduler.

use crate::sched::{RandomScheduler, SchedulePoint, Scheduler, StepClass};
use crate::script::{Op, Script};
use dimmunix_core::ThreadId;
use dimmunix_core::{Decision, ReferenceCore, Runtime, Signature, StatsSnapshot};
use dimmunix_signature::{FrameId, StackId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Handle to a simulated lock (index within one [`Sim`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockHandle(pub usize);

/// Simulator tunables.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Abort the run after this many scheduler steps (runaway guard).
    pub max_steps: u64,
    /// Step the monitor every this many time units (the simulated τ).
    pub monitor_every: u64,
    /// Simulated max-yield duration (steps) before a yield aborts, §5.7.
    pub max_yield_steps: Option<u64>,
    /// End the run as soon as the monitor reports a deadlock (the paper's
    /// "the test deadlocked prior to completion").
    pub stop_on_deadlock: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            max_steps: 1_000_000,
            monitor_every: 20,
            max_yield_steps: Some(100_000),
            stop_on_deadlock: true,
        }
    }
}

/// One edge of the wait-for graph at deadlock time: `waiter` cannot
/// proceed until `lock` — currently held by `holder` — is released.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct WaitEdge {
    /// The thread that cannot make progress.
    pub waiter: &'static str,
    /// The simulated lock it is waiting on.
    pub lock: &'static str,
    /// The thread holding that lock, if any ("none" can occur transiently
    /// when a yield cause's holder already released but the wake was not
    /// yet delivered — itself a diagnostic).
    pub holder: Option<&'static str>,
    /// `true` when the wait is an avoidance yield (parked by Dimmunix),
    /// `false` when the thread is blocked in the lock itself.
    pub via_yield: bool,
}

/// How a simulation ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every thread ran its script to completion.
    Completed,
    /// A deadlock occurred; the named threads were stuck.
    Deadlock {
        /// Names of the stuck threads.
        stuck: Vec<&'static str>,
        /// The wait-for edges among them: who waits on which lock held by
        /// whom. Minimizers and fixture formats key on these.
        edges: Vec<WaitEdge>,
    },
    /// The step budget ran out.
    MaxSteps,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// Yields performed during this run.
    pub yields: u64,
    /// Deadlocks detected by the monitor during this run.
    pub deadlocks_detected: u64,
    /// Starvations detected during this run.
    pub starvations_detected: u64,
    /// Signatures added to the history during this run.
    pub signatures_added: u64,
    /// Yield-timeout aborts during this run.
    pub yield_aborts: u64,
    /// Events the monitor drained from the per-thread lanes during this
    /// run — the embedded-mode view of the monitor-lag gauge.
    pub events_drained: u64,
    /// Scheduling decision points in this run (the schedule's length).
    pub decisions: u64,
    /// Times a thread stopped being runnable: blocked on a held lock or
    /// parked in an avoidance yield.
    pub parks: u64,
    /// Times a parked thread was made runnable again: a FIFO lock
    /// hand-off, a yield-cause release, or a monitor starvation break.
    /// On a completed run, `parks == wakes + yield_aborts` — every park
    /// was resolved by a wake or a timeout, none was lost.
    pub wakes: u64,
}

impl RunReport {
    /// Whether the run completed without deadlocking.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Completed
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VState {
    Ready,
    /// Waiting for the simulated lock to be granted (GO was given).
    Blocked(usize),
    /// Dimmunix told the thread to yield on this lock.
    Yielding(usize),
    Done,
}

struct VThread {
    name: &'static str,
    tid: ThreadId,
    ops: Vec<Op>,
    pc: usize,
    /// Interned frames of the current call scopes (outermost first).
    frames: Vec<FrameId>,
    state: VState,
    /// Set when a `release` wake or monitor break makes a yielder eligible.
    woken: bool,
    yield_since: u64,
    yield_sig: Option<Arc<Signature>>,
    /// Pending site info for the lock being yielded on (to retry).
    pending: Option<(Vec<FrameId>, StackId)>,
    held: Vec<usize>,
}

struct SimLock {
    name: &'static str,
    id: dimmunix_core::LockId,
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

/// A lockstep shadow: the preserved single-lock [`ReferenceCore`] driven
/// through the same hook sequence as the production sharded engine, with
/// every GO/YIELD decision and wake set compared on the spot.
struct Shadow {
    core: ReferenceCore,
    /// Shadow thread ids, parallel to `Sim::threads`.
    tids: Vec<ThreadId>,
    /// Human-readable divergence reports (empty = byte-identical streams).
    divergences: Vec<String>,
    /// Whether shadow tids numerically equal the runtime tids. Cover
    /// *choice* (which instance binds) is order-sensitive in tid space, so
    /// wake sets are only comparable when the numbering lines up; GO/YIELD
    /// decisions are order-insensitive and always compared.
    aligned: bool,
}

/// A deterministic simulation of virtual threads over one Dimmunix runtime.
///
/// The runtime (and hence the history — the immune memory) is shared across
/// sims: run one `Sim` per "program execution" and reuse the runtime to
/// model restarts.
///
/// Simulated threads drive the exact production hook path: spawning
/// registers a dense thread id *and* its per-thread SPSC event lane, every
/// hook publishes onto that lane, and the embedded monitor steps drain the
/// lanes in slot order — so the simulator exercises the same sharded
/// request path (and the same lane-ordering rules) as real OS threads.
pub struct Sim {
    rt: Runtime,
    config: SimConfig,
    rng: StdRng,
    locks: Vec<SimLock>,
    threads: Vec<VThread>,
    time: u64,
    start_stats: StatsSnapshot,
    shadow: Option<Shadow>,
    parks: u64,
    wakes: u64,
}

impl Sim {
    /// Creates a simulation over `rt` with a deterministic `seed`.
    pub fn new(rt: &Runtime, seed: u64) -> Self {
        Self::with_config(rt, seed, SimConfig::default())
    }

    /// Creates a simulation with explicit tunables.
    pub fn with_config(rt: &Runtime, seed: u64, config: SimConfig) -> Self {
        Self {
            rt: rt.clone(),
            config,
            rng: StdRng::seed_from_u64(seed),
            locks: Vec::new(),
            threads: Vec::new(),
            time: 0,
            start_stats: rt.stats(),
            shadow: None,
            parks: 0,
            wakes: 0,
        }
    }

    /// Attaches a lockstep [`ReferenceCore`] shadow sharing this runtime's
    /// history and stack table. Every subsequent hook is mirrored into the
    /// shadow and its GO/YIELD decision compared on the spot; divergences
    /// accumulate in [`Sim::shadow_divergences`]. Must be called before
    /// [`Sim::spawn`] so both engines see identical registration order.
    ///
    /// # Panics
    ///
    /// Panics if threads were already spawned.
    pub fn attach_shadow(&mut self) {
        assert!(
            self.threads.is_empty(),
            "attach_shadow must be called before spawn()"
        );
        self.shadow = Some(Shadow {
            core: ReferenceCore::new(
                self.rt.config().clone(),
                Arc::clone(self.rt.history()),
                Arc::clone(self.rt.stack_table()),
            ),
            tids: Vec::new(),
            divergences: Vec::new(),
            aligned: true,
        });
    }

    /// Divergence reports from the lockstep shadow (empty when no shadow
    /// is attached, or when the decision streams matched byte for byte).
    pub fn shadow_divergences(&self) -> &[String] {
        self.shadow.as_ref().map_or(&[], |s| &s.divergences)
    }

    /// Declares a simulated lock.
    pub fn lock_handle(&mut self, name: &'static str) -> LockHandle {
        let id = self.rt.new_lock_id();
        self.locks.push(SimLock {
            name,
            id,
            owner: None,
            waiters: VecDeque::new(),
        });
        LockHandle(self.locks.len() - 1)
    }

    /// Spawns a virtual thread running `script`.
    ///
    /// # Panics
    ///
    /// Panics if the runtime's `max_threads` registrations are exhausted.
    pub fn spawn(&mut self, name: &'static str, script: Script) {
        let tid = self
            .rt
            .core()
            .register_thread()
            .expect("simulator thread registration failed: raise Config::max_threads");
        if let Some(sh) = &mut self.shadow {
            let stid = sh
                .core
                .register_thread()
                .expect("shadow thread registration failed");
            sh.aligned &= stid == tid;
            sh.tids.push(stid);
        }
        self.threads.push(VThread {
            name,
            tid,
            ops: script.ops().to_vec(),
            pc: 0,
            frames: Vec::new(),
            state: VState::Ready,
            woken: false,
            yield_since: 0,
            yield_sig: None,
            pending: None,
            held: Vec::new(),
        });
    }

    /// Interns the stack for thread `v` locking at `site` (or at its current
    /// program position when `site` is `None`).
    fn lock_stack(&self, v: usize, site: Option<&'static str>) -> (Vec<FrameId>, StackId) {
        let t = &self.threads[v];
        let mut frames = t.frames.clone();
        let site_frame = match site {
            Some(s) => self.rt.frame_table().intern(s, "<site>", 0),
            None => self
                .rt
                .frame_table()
                .intern("lock", "<script>", t.pc as u32),
        };
        frames.push(site_frame);
        let stack = self.rt.stack_table().intern(&frames);
        (frames, stack)
    }

    /// Grants `lock` to `v` at the core level and updates sim state.
    fn grant(&mut self, v: usize, lock: usize, stack: StackId) {
        let tid = self.threads[v].tid;
        let lid = self.locks[lock].id;
        self.locks[lock].owner = Some(v);
        self.rt.core().acquired(tid, lid, stack);
        if let Some(sh) = &mut self.shadow {
            sh.core.acquired(sh.tids[v], lid, stack);
        }
        self.threads[v].held.push(lock);
        self.threads[v].state = VState::Ready;
        self.threads[v].pc += 1;
    }

    /// Attempts the simulated acquisition after a GO decision.
    fn attempt_acquire(&mut self, v: usize, lock: usize, stack: StackId) {
        if self.locks[lock].owner.is_none() {
            self.grant(v, lock, stack);
        } else {
            self.locks[lock].waiters.push_back(v);
            self.threads[v].state = VState::Blocked(lock);
            self.threads[v].pending = Some((Vec::new(), stack));
            self.parks += 1;
        }
    }

    /// Mirrors a `request` into the shadow and compares the decision.
    fn shadow_request(
        &mut self,
        v: usize,
        lock: usize,
        frames: &[FrameId],
        stack: StackId,
        primary_go: bool,
    ) {
        let lid = self.locks[lock].id;
        let Some(sh) = &mut self.shadow else { return };
        let d = sh.core.request(sh.tids[v], lid, frames, stack);
        let shadow_go = matches!(d, Decision::Go);
        if shadow_go != primary_go {
            sh.divergences.push(format!(
                "decision divergence: thread {} requesting {}: sharded {} vs reference {}",
                self.threads[v].name,
                self.locks[lock].name,
                if primary_go { "GO" } else { "YIELD" },
                if shadow_go { "GO" } else { "YIELD" },
            ));
        }
    }

    /// Mirrors a `force_go` into the shadow (broken or timed-out yield).
    fn shadow_force_go(&mut self, v: usize, lock: usize, frames: &[FrameId], stack: StackId) {
        let lid = self.locks[lock].id;
        if let Some(sh) = &mut self.shadow {
            sh.core.force_go(sh.tids[v], lid, frames, stack);
        }
    }

    /// Mirrors a `cancel` into the shadow.
    fn shadow_cancel(&mut self, v: usize, lock: usize) {
        let lid = self.locks[lock].id;
        if let Some(sh) = &mut self.shadow {
            sh.core.cancel(sh.tids[v], lid);
        }
    }

    /// Drains the shadow's event queue (stands in for its monitor).
    fn drain_shadow(&self) {
        if let Some(sh) = &self.shadow {
            sh.core.drain_events(usize::MAX);
        }
    }

    /// Executes one scheduling slot for thread `v`. Returns `false` if the
    /// thread could not make progress.
    fn run_slot(&mut self, v: usize) {
        // Resume a yielding thread first.
        if let VState::Yielding(lock) = self.threads[v].state {
            let tid = self.threads[v].tid;
            let (frames, stack) = self.threads[v]
                .pending
                .clone()
                .expect("yielding thread has a pending request");
            if self.rt.core().take_broken(tid) {
                // Monitor broke the starvation: pursue the lock directly.
                self.rt
                    .core()
                    .force_go(tid, self.locks[lock].id, &frames, stack);
                self.shadow_force_go(v, lock, &frames, stack);
                self.threads[v].yield_sig = None;
                self.threads[v].woken = false;
                self.attempt_acquire(v, lock, stack);
                return;
            }
            let timed_out = self
                .config
                .max_yield_steps
                .is_some_and(|m| self.time.saturating_sub(self.threads[v].yield_since) >= m);
            if timed_out {
                if let Some(sig) = self.threads[v].yield_sig.take() {
                    crate::sim::record_abort(&self.rt, &sig);
                }
                self.rt
                    .core()
                    .force_go(tid, self.locks[lock].id, &frames, stack);
                self.shadow_force_go(v, lock, &frames, stack);
                self.threads[v].woken = false;
                self.attempt_acquire(v, lock, stack);
                return;
            }
            if !self.threads[v].woken {
                return;
            }
            self.threads[v].woken = false;
            match self
                .rt
                .core()
                .request(tid, self.locks[lock].id, &frames, stack)
            {
                Decision::Go => {
                    self.shadow_request(v, lock, &frames, stack, true);
                    self.threads[v].yield_sig = None;
                    self.attempt_acquire(v, lock, stack);
                }
                Decision::Yield { sig } => {
                    self.shadow_request(v, lock, &frames, stack, false);
                    self.threads[v].yield_sig = Some(sig);
                    self.threads[v].yield_since = self.time;
                    self.parks += 1;
                }
            }
            return;
        }

        let Some(&op) = self.threads[v].ops.get(self.threads[v].pc) else {
            self.finish_thread(v);
            return;
        };
        match op {
            Op::Call(name) => {
                let f = self.rt.frame_table().intern(name, "<call>", 0);
                self.threads[v].frames.push(f);
                self.threads[v].pc += 1;
            }
            Op::Return => {
                self.threads[v].frames.pop();
                self.threads[v].pc += 1;
            }
            Op::Compute(n) => {
                self.time += u64::from(n);
                self.threads[v].pc += 1;
            }
            Op::Lock(LockHandle(lock), site) => {
                let (frames, stack) = self.lock_stack(v, site);
                let tid = self.threads[v].tid;
                match self
                    .rt
                    .core()
                    .request(tid, self.locks[lock].id, &frames, stack)
                {
                    Decision::Go => {
                        self.shadow_request(v, lock, &frames, stack, true);
                        self.attempt_acquire(v, lock, stack);
                    }
                    Decision::Yield { sig } => {
                        self.shadow_request(v, lock, &frames, stack, false);
                        self.threads[v].state = VState::Yielding(lock);
                        self.threads[v].yield_sig = Some(sig);
                        self.threads[v].yield_since = self.time;
                        self.threads[v].woken = false;
                        self.threads[v].pending = Some((frames, stack));
                        self.parks += 1;
                    }
                }
            }
            Op::TryLock(LockHandle(lock), site) => {
                let (frames, stack) = self.lock_stack(v, site);
                let tid = self.threads[v].tid;
                match self
                    .rt
                    .core()
                    .request(tid, self.locks[lock].id, &frames, stack)
                {
                    Decision::Go => {
                        self.shadow_request(v, lock, &frames, stack, true);
                        if self.locks[lock].owner.is_none() {
                            self.grant(v, lock, stack);
                            return;
                        }
                        self.rt.core().cancel(tid, self.locks[lock].id);
                        self.shadow_cancel(v, lock);
                    }
                    Decision::Yield { .. } => {
                        self.shadow_request(v, lock, &frames, stack, false);
                        self.rt.core().cancel(tid, self.locks[lock].id);
                        self.shadow_cancel(v, lock);
                    }
                }
                self.threads[v].pc += 1;
            }
            Op::UnlockIfHeld(LockHandle(lock)) => {
                if !self.threads[v].held.contains(&lock) {
                    self.threads[v].pc += 1;
                    return;
                }
                self.do_unlock(v, lock);
            }
            Op::Unlock(LockHandle(lock)) => {
                self.do_unlock(v, lock);
            }
        }
    }

    fn do_unlock(&mut self, v: usize, lock: usize) {
        let tid = self.threads[v].tid;
        let wake = self.rt.core().release(tid, self.locks[lock].id);
        if let Some(sh) = &mut self.shadow {
            let shadow_wake = sh.core.release(sh.tids[v], self.locks[lock].id);
            if sh.aligned {
                // Map both wake sets to thread indices and compare. Cover
                // choice is tid-order-sensitive, so this is only meaningful
                // when the two engines share the tid numbering.
                let mut a: Vec<usize> = wake
                    .iter()
                    .filter_map(|w| self.threads.iter().position(|t| t.tid == *w))
                    .collect();
                let mut b: Vec<usize> = shadow_wake
                    .iter()
                    .filter_map(|w| sh.tids.iter().position(|t| t == w))
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                if a != b {
                    sh.divergences.push(format!(
                        "wake divergence: {} releasing {}: sharded wakes {:?} vs reference {:?}",
                        self.threads[v].name, self.locks[lock].name, a, b
                    ));
                }
            }
        }
        if let Some(pos) = self.threads[v].held.iter().rposition(|&h| h == lock) {
            self.threads[v].held.remove(pos);
        }
        self.locks[lock].owner = None;
        // FIFO hand-off to the next blocked waiter.
        if let Some(next) = self.locks[lock].waiters.pop_front() {
            let stack = self.threads[next]
                .pending
                .as_ref()
                .map(|(_, s)| *s)
                .expect("blocked thread has a pending stack");
            self.wakes += 1;
            self.grant(next, lock, stack);
        }
        // Wake yielding threads whose cause was (tid, lock).
        for w in wake {
            if let Some(idx) = self.threads.iter().position(|t| t.tid == w) {
                if !self.threads[idx].woken {
                    self.wakes += 1;
                }
                self.threads[idx].woken = true;
            }
        }
        self.threads[v].pc += 1;
    }

    fn finish_thread(&mut self, v: usize) {
        self.threads[v].state = VState::Done;
    }

    /// Whether thread `v` can be scheduled right now.
    fn eligible(&self, v: usize) -> bool {
        match self.threads[v].state {
            VState::Ready => true,
            VState::Yielding(_) => {
                self.threads[v].woken
                    || self
                        .config
                        .max_yield_steps
                        .is_some_and(|m| self.time.saturating_sub(self.threads[v].yield_since) >= m)
            }
            VState::Blocked(_) | VState::Done => false,
        }
    }

    /// Runs to completion, deadlock, or step exhaustion under the built-in
    /// seeded [`RandomScheduler`] (the seed passed at construction).
    pub fn run(&mut self) -> RunReport {
        // Hand the sim's own rng to a RandomScheduler for the duration, so
        // seeded runs consume the exact same random stream as they did
        // before the scheduler became pluggable.
        let rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let mut sched = RandomScheduler::from_rng(rng);
        let report = self.run_with(&mut sched);
        self.rng = sched.into_rng();
        report
    }

    /// Runs to completion, deadlock, or step exhaustion, asking `sched`
    /// which eligible thread steps at every decision point.
    pub fn run_with(&mut self, sched: &mut dyn Scheduler) -> RunReport {
        self.parks = 0;
        self.wakes = 0;
        let mut steps = 0_u64;
        let mut decisions = 0_u64;
        let mut last_monitor = 0_u64;
        let outcome = loop {
            if steps >= self.config.max_steps {
                break Outcome::MaxSteps;
            }
            steps += 1;
            self.time += 1;
            if self.time - last_monitor >= self.config.monitor_every {
                last_monitor = self.time;
                self.rt.step_monitor();
                self.drain_shadow();
                self.poll_breaks();
                if self.config.stop_on_deadlock && self.deadlock_delta() > 0 {
                    break self.deadlock_outcome();
                }
            }
            let eligible: Vec<usize> = (0..self.threads.len())
                .filter(|&v| self.eligible(v))
                .collect();
            if eligible.is_empty() {
                if self.threads.iter().all(|t| t.state == VState::Done) {
                    break Outcome::Completed;
                }
                // Quiescent but unfinished: give the monitor a chance to
                // detect and break, then advance time to yield timeouts.
                self.rt.step_monitor();
                self.drain_shadow();
                last_monitor = self.time;
                self.poll_breaks();
                if self.config.stop_on_deadlock && self.deadlock_delta() > 0 {
                    break self.deadlock_outcome();
                }
                if self.threads.iter().any(|t| t.woken) {
                    continue;
                }
                // Advance virtual time to the earliest yield timeout.
                let next_timeout = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.state {
                        VState::Yielding(_) => self
                            .config
                            .max_yield_steps
                            .map(|m| t.yield_since.saturating_add(m)),
                        _ => None,
                    })
                    .min();
                match next_timeout {
                    Some(deadline) if deadline > self.time => {
                        self.time = deadline;
                        continue;
                    }
                    Some(_) => continue,
                    None => {
                        // Nothing can ever run again: a real deadlock.
                        let outcome = self.deadlock_outcome();
                        self.rt.step_monitor();
                        self.drain_shadow();
                        break outcome;
                    }
                }
            }
            let classes: Vec<StepClass> = eligible.iter().map(|&v| self.step_class(v)).collect();
            let point = SchedulePoint {
                decision: decisions,
                eligible: &eligible,
                classes: &classes,
            };
            let pick = sched.pick(&point);
            assert!(
                eligible.contains(&pick),
                "scheduler picked ineligible thread {pick} (eligible {eligible:?})"
            );
            decisions += 1;
            self.run_slot(pick);
        };
        // Trial over: drain events and clean up the RAG (the "program" has
        // terminated or been restarted).
        self.rt.step_monitor();
        self.drain_shadow();
        let end = self.rt.stats();
        RunReport {
            outcome,
            steps,
            yields: end.yields - self.start_stats.yields,
            deadlocks_detected: end.deadlocks_detected - self.start_stats.deadlocks_detected,
            starvations_detected: end.starvations_detected - self.start_stats.starvations_detected,
            signatures_added: end.signatures_added - self.start_stats.signatures_added,
            yield_aborts: end.yield_aborts - self.start_stats.yield_aborts,
            events_drained: end.events_processed - self.start_stats.events_processed,
            decisions,
            parks: self.parks,
            wakes: self.wakes,
        }
    }

    /// The step class thread `v` would execute if scheduled now (see
    /// [`StepClass`]). Dynamic: an `UnlockIfHeld` of an unheld lock is
    /// local, a yield-resume is visible on the yielded lock.
    fn step_class(&self, v: usize) -> StepClass {
        let t = &self.threads[v];
        if let VState::Yielding(lock) = t.state {
            return StepClass::Visible(lock);
        }
        match t.ops.get(t.pc).copied() {
            None | Some(Op::Call(_)) | Some(Op::Return) | Some(Op::Compute(_)) => StepClass::Local,
            Some(Op::Lock(LockHandle(l), _))
            | Some(Op::TryLock(LockHandle(l), _))
            | Some(Op::Unlock(LockHandle(l))) => StepClass::Visible(l),
            Some(Op::UnlockIfHeld(LockHandle(l))) => {
                if t.held.contains(&l) {
                    StepClass::Visible(l)
                } else {
                    StepClass::Local
                }
            }
        }
    }

    fn deadlock_outcome(&self) -> Outcome {
        Outcome::Deadlock {
            stuck: self.stuck_names(),
            edges: self.wait_edges(),
        }
    }

    /// The wait-for edges among unfinished threads: blocked waits read the
    /// simulated lock table, yield waits read the core's registered causes
    /// through the probe surface.
    fn wait_edges(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for t in &self.threads {
            match t.state {
                VState::Blocked(l) => edges.push(WaitEdge {
                    waiter: t.name,
                    lock: self.locks[l].name,
                    holder: self.locks[l].owner.map(|o| self.threads[o].name),
                    via_yield: false,
                }),
                VState::Yielding(l) => {
                    let causes = self.rt.core().yield_causes(t.tid);
                    if causes.is_empty() {
                        // Cause already cleared (broken yield not yet
                        // resumed): fall back to the yielded lock itself.
                        edges.push(WaitEdge {
                            waiter: t.name,
                            lock: self.locks[l].name,
                            holder: self.locks[l].owner.map(|o| self.threads[o].name),
                            via_yield: true,
                        });
                    }
                    for c in causes {
                        edges.push(WaitEdge {
                            waiter: t.name,
                            lock: self
                                .locks
                                .iter()
                                .find(|sl| sl.id == c.lock)
                                .map_or("<extern>", |sl| sl.name),
                            holder: self
                                .threads
                                .iter()
                                .find(|th| th.tid == c.thread)
                                .map(|th| th.name),
                            via_yield: true,
                        });
                    }
                }
                VState::Ready | VState::Done => {}
            }
        }
        edges
    }

    /// Names of this sim's threads the core still counts as parked in a
    /// yield — on a completed run this must be empty (no lost wakeups).
    pub fn parked_yielders(&self) -> Vec<&'static str> {
        let parked = self.rt.core().parked_yielders();
        self.threads
            .iter()
            .filter(|t| parked.iter().any(|(pt, _)| *pt == t.tid))
            .map(|t| t.name)
            .collect()
    }

    /// Marks yielders whose yield the monitor just broke as eligible.
    fn poll_breaks(&mut self) {
        for v in 0..self.threads.len() {
            if matches!(self.threads[v].state, VState::Yielding(_))
                && self.rt.core().is_yielding(self.threads[v].tid)
            {
                // Still yielding normally.
                continue;
            }
            if matches!(self.threads[v].state, VState::Yielding(_)) {
                // The monitor cleared the yield (break): schedule a resume.
                if !self.threads[v].woken {
                    self.wakes += 1;
                }
                self.threads[v].woken = true;
            }
        }
    }

    fn deadlock_delta(&self) -> u64 {
        self.rt.stats().deadlocks_detected - self.start_stats.deadlocks_detected
    }

    fn stuck_names(&self) -> Vec<&'static str> {
        self.threads
            .iter()
            .filter(|t| !matches!(t.state, VState::Done))
            .map(|t| t.name)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.time
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        if let Some(sh) = &self.shadow {
            for &tid in &sh.tids {
                sh.core.unregister_thread(tid);
            }
            sh.core.drain_events(usize::MAX);
        }
        for t in &self.threads {
            self.rt.core().unregister_thread(t.tid);
        }
        // Let the monitor observe the exits so the RAG forgets this run.
        self.rt.step_monitor();
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("threads", &self.threads.len())
            .field("locks", &self.locks.len())
            .field("time", &self.time)
            .finish()
    }
}

/// Records a yield-timeout abort against `sig` with the runtime's
/// auto-disable policy (mirrors the real-thread path).
fn record_abort(rt: &Runtime, sig: &Arc<Signature>) {
    let aborts = sig.record_abort();
    if let Some(threshold) = rt.config().abort_disable_threshold {
        if aborts >= threshold && !sig.is_disabled() {
            sig.set_disabled(true);
            rt.history().touch();
        }
    }
}
