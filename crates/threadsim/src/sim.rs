//! The cooperative scheduler.

use crate::script::{Op, Script};
use dimmunix_core::ThreadId;
use dimmunix_core::{Decision, Runtime, Signature, StatsSnapshot};
use dimmunix_signature::{FrameId, StackId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// Handle to a simulated lock (index within one [`Sim`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockHandle(pub usize);

/// Simulator tunables.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Abort the run after this many scheduler steps (runaway guard).
    pub max_steps: u64,
    /// Step the monitor every this many time units (the simulated τ).
    pub monitor_every: u64,
    /// Simulated max-yield duration (steps) before a yield aborts, §5.7.
    pub max_yield_steps: Option<u64>,
    /// End the run as soon as the monitor reports a deadlock (the paper's
    /// "the test deadlocked prior to completion").
    pub stop_on_deadlock: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            max_steps: 1_000_000,
            monitor_every: 20,
            max_yield_steps: Some(100_000),
            stop_on_deadlock: true,
        }
    }
}

/// How a simulation ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every thread ran its script to completion.
    Completed,
    /// A deadlock occurred; the named threads were stuck.
    Deadlock {
        /// Names of the stuck threads.
        stuck: Vec<&'static str>,
    },
    /// The step budget ran out.
    MaxSteps,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// Yields performed during this run.
    pub yields: u64,
    /// Deadlocks detected by the monitor during this run.
    pub deadlocks_detected: u64,
    /// Starvations detected during this run.
    pub starvations_detected: u64,
    /// Signatures added to the history during this run.
    pub signatures_added: u64,
    /// Yield-timeout aborts during this run.
    pub yield_aborts: u64,
    /// Events the monitor drained from the per-thread lanes during this
    /// run — the embedded-mode view of the monitor-lag gauge.
    pub events_drained: u64,
}

impl RunReport {
    /// Whether the run completed without deadlocking.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Completed
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VState {
    Ready,
    /// Waiting for the simulated lock to be granted (GO was given).
    Blocked(usize),
    /// Dimmunix told the thread to yield on this lock.
    Yielding(usize),
    Done,
}

struct VThread {
    name: &'static str,
    tid: ThreadId,
    ops: Vec<Op>,
    pc: usize,
    /// Interned frames of the current call scopes (outermost first).
    frames: Vec<FrameId>,
    state: VState,
    /// Set when a `release` wake or monitor break makes a yielder eligible.
    woken: bool,
    yield_since: u64,
    yield_sig: Option<Arc<Signature>>,
    /// Pending site info for the lock being yielded on (to retry).
    pending: Option<(Vec<FrameId>, StackId)>,
    held: Vec<usize>,
}

struct SimLock {
    #[allow(dead_code)] // Names aid debugging/DOT dumps.
    name: &'static str,
    id: dimmunix_core::LockId,
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

/// A deterministic simulation of virtual threads over one Dimmunix runtime.
///
/// The runtime (and hence the history — the immune memory) is shared across
/// sims: run one `Sim` per "program execution" and reuse the runtime to
/// model restarts.
///
/// Simulated threads drive the exact production hook path: spawning
/// registers a dense thread id *and* its per-thread SPSC event lane, every
/// hook publishes onto that lane, and the embedded monitor steps drain the
/// lanes in slot order — so the simulator exercises the same sharded
/// request path (and the same lane-ordering rules) as real OS threads.
pub struct Sim {
    rt: Runtime,
    config: SimConfig,
    rng: StdRng,
    locks: Vec<SimLock>,
    threads: Vec<VThread>,
    time: u64,
    start_stats: StatsSnapshot,
}

impl Sim {
    /// Creates a simulation over `rt` with a deterministic `seed`.
    pub fn new(rt: &Runtime, seed: u64) -> Self {
        Self::with_config(rt, seed, SimConfig::default())
    }

    /// Creates a simulation with explicit tunables.
    pub fn with_config(rt: &Runtime, seed: u64, config: SimConfig) -> Self {
        Self {
            rt: rt.clone(),
            config,
            rng: StdRng::seed_from_u64(seed),
            locks: Vec::new(),
            threads: Vec::new(),
            time: 0,
            start_stats: rt.stats(),
        }
    }

    /// Declares a simulated lock.
    pub fn lock_handle(&mut self, name: &'static str) -> LockHandle {
        let id = self.rt.new_lock_id();
        self.locks.push(SimLock {
            name,
            id,
            owner: None,
            waiters: VecDeque::new(),
        });
        LockHandle(self.locks.len() - 1)
    }

    /// Spawns a virtual thread running `script`.
    ///
    /// # Panics
    ///
    /// Panics if the runtime's `max_threads` registrations are exhausted.
    pub fn spawn(&mut self, name: &'static str, script: Script) {
        let tid = self
            .rt
            .core()
            .register_thread()
            .expect("simulator thread registration failed: raise Config::max_threads");
        self.threads.push(VThread {
            name,
            tid,
            ops: script.ops().to_vec(),
            pc: 0,
            frames: Vec::new(),
            state: VState::Ready,
            woken: false,
            yield_since: 0,
            yield_sig: None,
            pending: None,
            held: Vec::new(),
        });
    }

    /// Interns the stack for thread `v` locking at `site` (or at its current
    /// program position when `site` is `None`).
    fn lock_stack(&self, v: usize, site: Option<&'static str>) -> (Vec<FrameId>, StackId) {
        let t = &self.threads[v];
        let mut frames = t.frames.clone();
        let site_frame = match site {
            Some(s) => self.rt.frame_table().intern(s, "<site>", 0),
            None => self
                .rt
                .frame_table()
                .intern("lock", "<script>", t.pc as u32),
        };
        frames.push(site_frame);
        let stack = self.rt.stack_table().intern(&frames);
        (frames, stack)
    }

    /// Grants `lock` to `v` at the core level and updates sim state.
    fn grant(&mut self, v: usize, lock: usize, stack: StackId) {
        let tid = self.threads[v].tid;
        self.locks[lock].owner = Some(v);
        self.rt.core().acquired(tid, self.locks[lock].id, stack);
        self.threads[v].held.push(lock);
        self.threads[v].state = VState::Ready;
        self.threads[v].pc += 1;
    }

    /// Attempts the simulated acquisition after a GO decision.
    fn attempt_acquire(&mut self, v: usize, lock: usize, stack: StackId) {
        if self.locks[lock].owner.is_none() {
            self.grant(v, lock, stack);
        } else {
            self.locks[lock].waiters.push_back(v);
            self.threads[v].state = VState::Blocked(lock);
            self.threads[v].pending = Some((Vec::new(), stack));
        }
    }

    /// Executes one scheduling slot for thread `v`. Returns `false` if the
    /// thread could not make progress.
    fn run_slot(&mut self, v: usize) {
        // Resume a yielding thread first.
        if let VState::Yielding(lock) = self.threads[v].state {
            let tid = self.threads[v].tid;
            let (frames, stack) = self.threads[v]
                .pending
                .clone()
                .expect("yielding thread has a pending request");
            if self.rt.core().take_broken(tid) {
                // Monitor broke the starvation: pursue the lock directly.
                self.rt
                    .core()
                    .force_go(tid, self.locks[lock].id, &frames, stack);
                self.threads[v].yield_sig = None;
                self.threads[v].woken = false;
                self.attempt_acquire(v, lock, stack);
                return;
            }
            let timed_out = self
                .config
                .max_yield_steps
                .is_some_and(|m| self.time.saturating_sub(self.threads[v].yield_since) >= m);
            if timed_out {
                if let Some(sig) = self.threads[v].yield_sig.take() {
                    crate::sim::record_abort(&self.rt, &sig);
                }
                self.rt
                    .core()
                    .force_go(tid, self.locks[lock].id, &frames, stack);
                self.threads[v].woken = false;
                self.attempt_acquire(v, lock, stack);
                return;
            }
            if !self.threads[v].woken {
                return;
            }
            self.threads[v].woken = false;
            match self
                .rt
                .core()
                .request(tid, self.locks[lock].id, &frames, stack)
            {
                Decision::Go => {
                    self.threads[v].yield_sig = None;
                    self.attempt_acquire(v, lock, stack);
                }
                Decision::Yield { sig } => {
                    self.threads[v].yield_sig = Some(sig);
                    self.threads[v].yield_since = self.time;
                }
            }
            return;
        }

        let Some(&op) = self.threads[v].ops.get(self.threads[v].pc) else {
            self.finish_thread(v);
            return;
        };
        match op {
            Op::Call(name) => {
                let f = self.rt.frame_table().intern(name, "<call>", 0);
                self.threads[v].frames.push(f);
                self.threads[v].pc += 1;
            }
            Op::Return => {
                self.threads[v].frames.pop();
                self.threads[v].pc += 1;
            }
            Op::Compute(n) => {
                self.time += u64::from(n);
                self.threads[v].pc += 1;
            }
            Op::Lock(LockHandle(lock), site) => {
                let (frames, stack) = self.lock_stack(v, site);
                let tid = self.threads[v].tid;
                match self
                    .rt
                    .core()
                    .request(tid, self.locks[lock].id, &frames, stack)
                {
                    Decision::Go => self.attempt_acquire(v, lock, stack),
                    Decision::Yield { sig } => {
                        self.threads[v].state = VState::Yielding(lock);
                        self.threads[v].yield_sig = Some(sig);
                        self.threads[v].yield_since = self.time;
                        self.threads[v].woken = false;
                        self.threads[v].pending = Some((frames, stack));
                    }
                }
            }
            Op::TryLock(LockHandle(lock), site) => {
                let (frames, stack) = self.lock_stack(v, site);
                let tid = self.threads[v].tid;
                match self
                    .rt
                    .core()
                    .request(tid, self.locks[lock].id, &frames, stack)
                {
                    Decision::Go => {
                        if self.locks[lock].owner.is_none() {
                            self.grant(v, lock, stack);
                            return;
                        }
                        self.rt.core().cancel(tid, self.locks[lock].id);
                    }
                    Decision::Yield { .. } => {
                        self.rt.core().cancel(tid, self.locks[lock].id);
                    }
                }
                self.threads[v].pc += 1;
            }
            Op::UnlockIfHeld(LockHandle(lock)) => {
                if !self.threads[v].held.contains(&lock) {
                    self.threads[v].pc += 1;
                    return;
                }
                self.do_unlock(v, lock);
            }
            Op::Unlock(LockHandle(lock)) => {
                self.do_unlock(v, lock);
            }
        }
    }

    fn do_unlock(&mut self, v: usize, lock: usize) {
        let tid = self.threads[v].tid;
        let wake = self.rt.core().release(tid, self.locks[lock].id);
        if let Some(pos) = self.threads[v].held.iter().rposition(|&h| h == lock) {
            self.threads[v].held.remove(pos);
        }
        self.locks[lock].owner = None;
        // FIFO hand-off to the next blocked waiter.
        if let Some(next) = self.locks[lock].waiters.pop_front() {
            let stack = self.threads[next]
                .pending
                .as_ref()
                .map(|(_, s)| *s)
                .expect("blocked thread has a pending stack");
            self.grant(next, lock, stack);
        }
        // Wake yielding threads whose cause was (tid, lock).
        for w in wake {
            if let Some(idx) = self.threads.iter().position(|t| t.tid == w) {
                self.threads[idx].woken = true;
            }
        }
        self.threads[v].pc += 1;
    }

    fn finish_thread(&mut self, v: usize) {
        self.threads[v].state = VState::Done;
    }

    /// Whether thread `v` can be scheduled right now.
    fn eligible(&self, v: usize) -> bool {
        match self.threads[v].state {
            VState::Ready => true,
            VState::Yielding(_) => {
                self.threads[v].woken
                    || self
                        .config
                        .max_yield_steps
                        .is_some_and(|m| self.time.saturating_sub(self.threads[v].yield_since) >= m)
            }
            VState::Blocked(_) | VState::Done => false,
        }
    }

    /// Runs to completion, deadlock, or step exhaustion.
    pub fn run(&mut self) -> RunReport {
        let mut steps = 0_u64;
        let mut last_monitor = 0_u64;
        let outcome = loop {
            if steps >= self.config.max_steps {
                break Outcome::MaxSteps;
            }
            steps += 1;
            self.time += 1;
            if self.time - last_monitor >= self.config.monitor_every {
                last_monitor = self.time;
                self.rt.step_monitor();
                self.poll_breaks();
                if self.config.stop_on_deadlock && self.deadlock_delta() > 0 {
                    break Outcome::Deadlock {
                        stuck: self.stuck_names(),
                    };
                }
            }
            let eligible: Vec<usize> = (0..self.threads.len())
                .filter(|&v| self.eligible(v))
                .collect();
            if eligible.is_empty() {
                if self.threads.iter().all(|t| t.state == VState::Done) {
                    break Outcome::Completed;
                }
                // Quiescent but unfinished: give the monitor a chance to
                // detect and break, then advance time to yield timeouts.
                self.rt.step_monitor();
                last_monitor = self.time;
                self.poll_breaks();
                if self.config.stop_on_deadlock && self.deadlock_delta() > 0 {
                    break Outcome::Deadlock {
                        stuck: self.stuck_names(),
                    };
                }
                if self.threads.iter().any(|t| t.woken) {
                    continue;
                }
                // Advance virtual time to the earliest yield timeout.
                let next_timeout = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.state {
                        VState::Yielding(_) => self
                            .config
                            .max_yield_steps
                            .map(|m| t.yield_since.saturating_add(m)),
                        _ => None,
                    })
                    .min();
                match next_timeout {
                    Some(deadline) if deadline > self.time => {
                        self.time = deadline;
                        continue;
                    }
                    Some(_) => continue,
                    None => {
                        // Nothing can ever run again: a real deadlock.
                        self.rt.step_monitor();
                        break Outcome::Deadlock {
                            stuck: self.stuck_names(),
                        };
                    }
                }
            }
            let pick = eligible[self.rng.gen_range(0..eligible.len())];
            self.run_slot(pick);
        };
        // Trial over: drain events and clean up the RAG (the "program" has
        // terminated or been restarted).
        self.rt.step_monitor();
        let end = self.rt.stats();
        RunReport {
            outcome,
            steps,
            yields: end.yields - self.start_stats.yields,
            deadlocks_detected: end.deadlocks_detected - self.start_stats.deadlocks_detected,
            starvations_detected: end.starvations_detected - self.start_stats.starvations_detected,
            signatures_added: end.signatures_added - self.start_stats.signatures_added,
            yield_aborts: end.yield_aborts - self.start_stats.yield_aborts,
            events_drained: end.events_processed - self.start_stats.events_processed,
        }
    }

    /// Marks yielders whose yield the monitor just broke as eligible.
    fn poll_breaks(&mut self) {
        for v in 0..self.threads.len() {
            if matches!(self.threads[v].state, VState::Yielding(_))
                && self.rt.core().is_yielding(self.threads[v].tid)
            {
                // Still yielding normally.
                continue;
            }
            if matches!(self.threads[v].state, VState::Yielding(_)) {
                // The monitor cleared the yield (break): schedule a resume.
                self.threads[v].woken = true;
            }
        }
    }

    fn deadlock_delta(&self) -> u64 {
        self.rt.stats().deadlocks_detected - self.start_stats.deadlocks_detected
    }

    fn stuck_names(&self) -> Vec<&'static str> {
        self.threads
            .iter()
            .filter(|t| !matches!(t.state, VState::Done))
            .map(|t| t.name)
            .collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.time
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        for t in &self.threads {
            self.rt.core().unregister_thread(t.tid);
        }
        // Let the monitor observe the exits so the RAG forgets this run.
        self.rt.step_monitor();
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("threads", &self.threads.len())
            .field("locks", &self.locks.len())
            .field("time", &self.time)
            .finish()
    }
}

/// Records a yield-timeout abort against `sig` with the runtime's
/// auto-disable policy (mirrors the real-thread path).
fn record_abort(rt: &Runtime, sig: &Arc<Signature>) {
    let aborts = sig.record_abort();
    if let Some(threshold) = rt.config().abort_disable_threshold {
        if aborts >= threshold && !sig.is_disabled() {
            sig.set_disabled(true);
            rt.history().touch();
        }
    }
}
