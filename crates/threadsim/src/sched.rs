//! Pluggable scheduling: the simulator's single nondeterministic choice.
//!
//! Every run of [`crate::Sim`] is a sequence of *decision points*: moments
//! where more than zero threads are runnable and one must be picked. All
//! nondeterminism in a simulation lives in that pick — the rest of the
//! simulator (lock hand-off order, monitor stepping, event draining) is a
//! deterministic function of the pick sequence. Factoring the pick into a
//! [`Scheduler`] trait is what turns the simulator from a sampler into a
//! *model checker*: a recorded pick sequence replays a schedule exactly
//! ([`ReplayScheduler`]), and an exploration driver (`dimmunix_explore`)
//! can enumerate pick sequences systematically instead of rolling dice.
//!
//! Each decision point also exposes the [`StepClass`] of every eligible
//! thread — whether its next step is thread-local bookkeeping or interacts
//! with a lock (and, through the avoidance engine, with global matching
//! state). Exploration drivers use the classes to decide which picks can
//! commute; the built-in [`RandomScheduler`] ignores them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// What kind of step a thread would execute if scheduled now.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StepClass {
    /// Thread-local bookkeeping: `Call`/`Return`, `Compute`, finishing the
    /// script, or an `UnlockIfHeld` of a lock the thread does not hold.
    /// Touches no lock and no shared engine state.
    Local,
    /// Interacts with the lock at this index (within the owning [`crate::Sim`]):
    /// an acquire, try-acquire, release, or a yield-resume on it — and,
    /// through the avoidance engine's request path, with global state.
    Visible(usize),
}

/// One scheduling decision point, passed to [`Scheduler::pick`].
#[derive(Debug)]
pub struct SchedulePoint<'a> {
    /// 0-based index of this decision within the run.
    pub decision: u64,
    /// Indices of the runnable threads, in ascending order. Never empty.
    pub eligible: &'a [usize],
    /// The step class each eligible thread would execute, parallel to
    /// `eligible`.
    pub classes: &'a [StepClass],
}

impl SchedulePoint<'_> {
    /// The step class of eligible thread `v`, if `v` is eligible.
    pub fn class_of(&self, v: usize) -> Option<StepClass> {
        self.eligible
            .iter()
            .position(|&e| e == v)
            .map(|i| self.classes[i])
    }
}

/// The pluggable decision point: chooses which runnable thread steps next.
pub trait Scheduler {
    /// Returns the thread index to run. Must be a member of
    /// `point.eligible`; the simulator asserts this.
    fn pick(&mut self, point: &SchedulePoint<'_>) -> usize;
}

/// The original seeded scheduler: a uniform choice over eligible threads.
///
/// Bit-compatible with the pre-refactor simulator — one `gen_range` call
/// per decision point over the same eligible ordering — so seeded runs
/// reproduce the exact schedules they always did.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A scheduler seeded deterministically.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub(crate) fn from_rng(rng: StdRng) -> Self {
        Self { rng }
    }

    pub(crate) fn into_rng(self) -> StdRng {
        self.rng
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> usize {
        point.eligible[self.rng.gen_range(0..point.eligible.len())]
    }
}

/// Replays a recorded pick sequence.
///
/// Consumes one recorded choice per decision point; when the recorded
/// thread is not currently eligible — or the recording runs out — it falls
/// back to the lowest eligible thread index. In *strict* mode such a
/// fallback on a recorded choice marks the replay diverged (the schedule
/// did not reproduce); in *lenient* mode it is expected, e.g. when a
/// vaccinated history inserts yields that change eligibility mid-replay.
///
/// Every pick actually taken is recorded in [`ReplayScheduler::trace`],
/// so the *effective* schedule of a lenient replay can itself be saved
/// and replayed strictly.
#[derive(Debug)]
pub struct ReplayScheduler {
    choices: VecDeque<usize>,
    strict: bool,
    trace: Vec<usize>,
    first_divergence: Option<u64>,
}

impl ReplayScheduler {
    /// Strict replay: a recorded-but-ineligible choice is a divergence.
    pub fn strict(choices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            choices: choices.into_iter().collect(),
            strict: true,
            trace: Vec::new(),
            first_divergence: None,
        }
    }

    /// Lenient replay: ineligible or exhausted choices silently fall back.
    pub fn lenient(choices: impl IntoIterator<Item = usize>) -> Self {
        Self {
            strict: false,
            ..Self::strict(choices)
        }
    }

    /// The picks actually taken so far.
    pub fn trace(&self) -> &[usize] {
        &self.trace
    }

    /// Consumes the scheduler, returning the effective pick sequence.
    pub fn into_trace(self) -> Vec<usize> {
        self.trace
    }

    /// The first decision index where a strict replay could not follow the
    /// recording, if any.
    pub fn first_divergence(&self) -> Option<u64> {
        self.first_divergence
    }

    /// Whether a strict replay failed to follow the recording.
    pub fn diverged(&self) -> bool {
        self.first_divergence.is_some()
    }
}

impl Scheduler for ReplayScheduler {
    fn pick(&mut self, point: &SchedulePoint<'_>) -> usize {
        let pick = match self.choices.pop_front() {
            Some(c) if point.eligible.contains(&c) => c,
            Some(_) => {
                if self.strict && self.first_divergence.is_none() {
                    self.first_divergence = Some(point.decision);
                }
                point.eligible[0]
            }
            None => point.eligible[0],
        };
        self.trace.push(pick);
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_follows_then_falls_back() {
        let mut s = ReplayScheduler::strict([2, 0]);
        let classes = [StepClass::Local, StepClass::Local];
        let p = SchedulePoint {
            decision: 0,
            eligible: &[0, 2],
            classes: &classes,
        };
        assert_eq!(s.pick(&p), 2);
        // Recorded 0, but only thread 1 is eligible: strict divergence.
        let p = SchedulePoint {
            decision: 1,
            eligible: &[1],
            classes: &classes[..1],
        };
        assert_eq!(s.pick(&p), 1);
        assert_eq!(s.first_divergence(), Some(1));
        // Recording exhausted: fallback without (further) divergence.
        let p = SchedulePoint {
            decision: 2,
            eligible: &[1, 3],
            classes: &classes,
        };
        assert_eq!(s.pick(&p), 1);
        assert_eq!(s.trace(), &[2, 1, 1]);
    }

    #[test]
    fn lenient_replay_never_diverges() {
        let mut s = ReplayScheduler::lenient([5]);
        let classes = [StepClass::Visible(0)];
        let p = SchedulePoint {
            decision: 0,
            eligible: &[0],
            classes: &classes,
        };
        assert_eq!(s.pick(&p), 0);
        assert!(!s.diverged());
    }
}
