//! Schedule exploration: hunting for the interleavings that deadlock.
//!
//! The paper's authors spent "on average two programmer-days" building
//! timing-loop exploits per bug (§7.1.1). With a seeded scheduler the hunt
//! is mechanical: run the same scenario under many seeds and collect the
//! outcomes. Workloads use this to certify that (a) the bug is reachable
//! and (b) Dimmunix removes it for every schedule previously seen to fail.

use crate::sim::{Outcome, RunReport};

/// Aggregate result of a seed sweep.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Seeds whose run deadlocked.
    pub deadlock_seeds: Vec<u64>,
    /// Seeds whose run completed.
    pub completed_seeds: Vec<u64>,
    /// Seeds whose run hit the step budget.
    pub exhausted_seeds: Vec<u64>,
    /// Total yields across all runs.
    pub total_yields: u64,
}

impl ExploreReport {
    /// Fraction of runs that deadlocked.
    pub fn deadlock_rate(&self) -> f64 {
        let total =
            self.deadlock_seeds.len() + self.completed_seeds.len() + self.exhausted_seeds.len();
        if total == 0 {
            0.0
        } else {
            self.deadlock_seeds.len() as f64 / total as f64
        }
    }

    /// Whether any run ended by exhausting its step budget — an
    /// *inconclusive* result, not a completion.
    pub fn inconclusive(&self) -> bool {
        !self.exhausted_seeds.is_empty()
    }

    /// One-line summary that keeps step-budget exhaustions distinct from
    /// completions (a sweep that never finished is not a sweep that never
    /// deadlocked).
    pub fn summary(&self) -> String {
        let total =
            self.deadlock_seeds.len() + self.completed_seeds.len() + self.exhausted_seeds.len();
        let mut s = format!(
            "{total} runs: {} deadlocked, {} completed",
            self.deadlock_seeds.len(),
            self.completed_seeds.len(),
        );
        if self.inconclusive() {
            s.push_str(&format!(
                ", {} exhausted the step budget (inconclusive)",
                self.exhausted_seeds.len()
            ));
        }
        s
    }
}

/// Runs `scenario` once per seed in `seeds`, collecting outcomes.
///
/// The scenario closure builds and runs a [`crate::Sim`] (typically against
/// a shared runtime, so immunity accumulates — pass a fresh runtime per
/// seed to measure the *buggy* baseline instead).
pub fn explore(
    seeds: impl IntoIterator<Item = u64>,
    mut scenario: impl FnMut(u64) -> RunReport,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in seeds {
        let run = scenario(seed);
        report.total_yields += run.yields;
        match run.outcome {
            Outcome::Deadlock { .. } => report.deadlock_seeds.push(seed),
            Outcome::Completed => report.completed_seeds.push(seed),
            Outcome::MaxSteps => report.exhausted_seeds.push(seed),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::Script;
    use crate::sim::Sim;
    use dimmunix_core::{Config, Runtime};

    #[test]
    fn sweep_classifies_outcomes() {
        // Fresh runtime per seed: the raw bug rate, no learning.
        let report = explore(0..8, |seed| {
            let rt = Runtime::new(Config::default()).unwrap();
            let mut sim = Sim::new(&rt, seed);
            let a = sim.lock_handle("A");
            let b = sim.lock_handle("B");
            sim.spawn(
                "T1",
                Script::new().scoped("update", |s| s.lock(a).lock(b).unlock(b).unlock(a)),
            );
            sim.spawn(
                "T2",
                Script::new().scoped("update", |s| s.lock(b).lock(a).unlock(a).unlock(b)),
            );
            sim.run()
        });
        let total = report.deadlock_seeds.len() + report.completed_seeds.len();
        assert_eq!(total, 8);
        assert!(
            !report.deadlock_seeds.is_empty(),
            "ABBA must deadlock under some schedule"
        );
        assert!(report.deadlock_rate() > 0.0);
        assert!(!report.inconclusive());
        assert!(report.summary().starts_with("8 runs:"));
        assert!(!report.summary().contains("inconclusive"));
    }

    #[test]
    fn summary_flags_exhausted_runs() {
        let report = ExploreReport {
            deadlock_seeds: vec![1],
            completed_seeds: vec![2, 3],
            exhausted_seeds: vec![4],
            total_yields: 0,
        };
        assert!(report.inconclusive());
        let s = report.summary();
        assert!(s.contains("1 deadlocked"), "{s}");
        assert!(s.contains("1 exhausted the step budget"), "{s}");
        assert!(s.contains("inconclusive"), "{s}");
    }
}
