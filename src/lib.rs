//! # Dimmunix — deadlock immunity for Rust
//!
//! A from-scratch Rust implementation of *"Deadlock Immunity: Enabling
//! Systems To Defend Against Deadlocks"* (Jula, Tralamazza, Zamfir, Candea —
//! OSDI 2008), together with the substrates, workloads, baselines and
//! benchmark harness needed to reproduce the paper's evaluation.
//!
//! **Deadlock immunity** is a property by which programs, once afflicted by
//! a given deadlock, develop resistance against future occurrences of that
//! and similar deadlocks. The first time a deadlock pattern manifests, the
//! runtime captures its *signature* — the multiset of call stacks on the
//! cycle's hold and yield edges — into a persistent *history*; from then
//! on, the `request` hook run at every lock acquisition anticipates
//! signature instantiations and steers the schedule away with yields.
//!
//! ## Crates
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`](dimmunix_core) | avoidance engine, monitor, lock types, runtime |
//! | [`rag`](dimmunix_rag) | resource allocation graph + cycle detectors |
//! | [`signature`](dimmunix_signature) | signatures, history, calibration |
//! | [`predict`](dimmunix_predict) | proactive lock-order-graph deadlock prediction |
//! | [`lockfree`](dimmunix_lockfree) | MPSC event queue, Peterson locks |
//! | [`threadsim`](dimmunix_threadsim) | deterministic interleaving simulator |
//! | [`explore`](dimmunix_explore) | DPOR schedule-space explorer + deadlock corpus |
//! | `dimmunix-workloads` | the paper's Table 1 / Table 2 bug reproductions |
//! | `dimmunix-baselines` | gate locks / ghost locks (§7.3 comparison) |
//! | `dimmunix-bench` | per-figure/table benchmark harness |
//!
//! ## Quick start
//!
//! ```
//! use dimmunix::{frame, Config, Runtime};
//!
//! let rt = Runtime::new(Config::default()).unwrap();
//!
//! // Drop-in mutexes with immunity.
//! let inventory = rt.mutex(vec!["widget"]);
//!
//! fn restock(inv: &dimmunix::ImmunizedMutex<Vec<&'static str>>) {
//!     frame!("restock"); // Optional: name this call flow for signatures.
//!     inv.lock().push("gadget");
//! }
//! restock(&inventory);
//! assert_eq!(inventory.lock().len(), 2);
//!
//! // The immune memory persists across runs and can be shipped to other
//! // installations ("vaccines"): see Runtime::vaccinate.
//! assert!(rt.history().is_empty()); // No deadlock ever happened here.
//! ```

#![warn(missing_docs)]

pub use dimmunix_core::*;

/// Re-export of the deterministic thread simulator.
pub mod sim {
    pub use dimmunix_threadsim::*;
}

/// Re-export of the RAG internals (diagnostics, DOT export).
pub mod rag {
    pub use dimmunix_rag::*;
}

/// Re-export of the lock-free substrate.
pub mod lockfree {
    pub use dimmunix_lockfree::*;
}

/// Re-export of the signature/history machinery.
pub mod signature {
    pub use dimmunix_signature::*;
}

/// Re-export of the proactive deadlock-prediction subsystem.
pub mod predict {
    pub use dimmunix_predict::*;
}

/// Re-export of the exhaustive schedule-space explorer (DPOR model
/// checking, invariant harness, deadlock corpus).
pub mod explore {
    pub use dimmunix_explore::*;
}
